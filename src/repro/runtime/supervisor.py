"""A supervised worker pool: chunk execution that survives its executors.

``multiprocessing.Pool.map`` has exactly one failure story: if a worker is
OOM-killed, wedges, or dies mid-task, the map blocks forever (the pool
respawns the process but the task it was holding is gone).  For hour-scale
surveys that is "a crash at hour three loses everything".  This module is
the replacement executor the engine's sharded passes run on when a
:class:`SupervisionPolicy` is configured:

* workers are plain ``multiprocessing.Process``es, one duplex pipe each, so
  the supervisor always knows *which* chunk a worker was holding;
* a worker that dies (``is_alive()`` false / pipe EOF) is detected within a
  poll interval, its chunk is requeued, and a replacement is spawned;
* chunk attempts are bounded by a per-chunk timeout (the stuck-worker
  model: the worker is terminated and the chunk requeued);
* failed chunks retry with exponential backoff up to ``max_retries``, then
  are **quarantined**: re-executed serially in the parent, where a genuine
  poison chunk produces a real traceback instead of an endless kill loop;
* a pool that keeps losing workers (more than ``max_worker_respawns``
  replacements) is declared unrecoverable and the pass **degrades to
  serial** execution of the remaining chunks — slower, never dead;
* an absolute ``deadline`` aborts the pass with :class:`DeadlineExceeded`
  so the caller can checkpoint-and-stop instead of dying mid-flight.

Results are returned in task order regardless of retry/completion order, so
supervision is invisible in the products — the chunk-merge identity the
fused pass relies on is untouched (``tests/test_supervisor.py`` pins
supervised == serial under every injected fault).

Every recovery action lands on the :class:`repro.runtime.report.RunReport`
threaded in, and a :class:`repro.runtime.faults.FaultPlan` on the policy is
shipped to workers for deterministic chaos testing.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .faults import FaultPlan
from .report import RunReport


class DeadlineExceeded(RuntimeError):
    """The supervised pass hit its wall-clock deadline before completing."""


class SupervisionError(RuntimeError):
    """The supervised pass could not complete (quarantined chunk failed serially)."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervised executor (all times in seconds).

    ``chunk_timeout`` bounds one chunk *attempt* (``None`` disables);
    ``max_retries`` bounds re-executions per chunk before quarantine;
    backoff before retry ``i`` is ``min(backoff_cap, backoff_base·2^(i-1))``;
    ``max_worker_respawns`` bounds pool repair before serial degradation;
    ``deadline`` is an *absolute* ``time.monotonic()`` instant (the resilient
    runner derives it from its wall-clock budget).  ``faults`` attaches a
    deterministic chaos plan, shipped to every worker.
    """

    chunk_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_worker_respawns: int = 4
    poll_interval: float = 0.02
    deadline: Optional[float] = None
    faults: Optional[FaultPlan] = None

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2 ** max(attempt - 1, 0)))


def _worker_main(conn, worker_fn, initializer, initargs, faults) -> None:
    """Worker process body: install inputs, then serve chunk tasks until EOF.

    Module-level (not a closure) so spawn contexts can pickle it; everything
    it needs arrives as arguments, pickled once at process start.
    """
    if initializer is not None:
        initializer(*initargs)
    if faults is not None:
        faults.install()
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            chunk_id, attempt, payload = task
            try:
                if faults is not None:
                    faults.apply_chunk_faults(chunk_id, attempt)
                result = worker_fn(payload)
            except Exception as error:  # noqa: BLE001 - reported to the parent
                conn.send((chunk_id, False, f"{type(error).__name__}: {error}"))
            else:
                conn.send((chunk_id, True, result))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):  # parent gone / shutdown
        pass


@dataclass
class _Worker:
    """Supervisor-side handle of one worker process."""

    process: Any
    conn: Any
    #: Chunk id the worker is currently holding (``None`` = idle).
    task: Optional[int] = None
    started: float = 0.0

    def close(self, terminate: bool) -> None:
        try:
            if terminate and self.process.is_alive():
                self.process.terminate()
            else:
                try:
                    self.conn.send(None)  # graceful: drain and exit
                except (BrokenPipeError, OSError):
                    pass
        finally:
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.join(timeout=2.0)
            self.conn.close()


@dataclass
class _PassState:
    """Bookkeeping of one supervised pass."""

    tasks: Sequence[Any]
    results: Dict[int, Any] = field(default_factory=dict)
    attempts: List[int] = field(default_factory=list)
    ready_at: List[float] = field(default_factory=list)
    pending: Deque[int] = field(default_factory=deque)

    def __post_init__(self) -> None:
        total = len(self.tasks)
        self.attempts = [0] * total
        self.ready_at = [0.0] * total
        self.pending = deque(range(total))

    @property
    def done(self) -> bool:
        return len(self.results) == len(self.tasks)

    def next_ready(self, now: float) -> Optional[int]:
        """Pop the first pending chunk whose backoff has elapsed (FIFO fair)."""
        for _ in range(len(self.pending)):
            chunk_id = self.pending.popleft()
            if self.ready_at[chunk_id] <= now:
                return chunk_id
            self.pending.append(chunk_id)
        return None

    def unfinished(self) -> List[int]:
        return [i for i in range(len(self.tasks)) if i not in self.results]


def run_supervised(
    worker_fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    context,
    processes: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    policy: Optional[SupervisionPolicy] = None,
    report: Optional[RunReport] = None,
) -> List[Any]:
    """Execute ``worker_fn`` over ``tasks`` on a supervised pool.

    Returns one result per task, in task order.  Raises
    :class:`DeadlineExceeded` when ``policy.deadline`` passes first (workers
    are torn down before raising), and propagates real exceptions from
    quarantined chunks' serial re-execution.  ``context`` is a resolved
    ``multiprocessing`` context (see
    :func:`repro.engine.fused.resolve_mp_context`).
    """
    policy = policy or SupervisionPolicy()
    report = report if report is not None else RunReport()
    if policy.faults is not None:
        report.record("fault_installed", plan=policy.faults.to_json())
        policy.faults.install()
    state = _PassState(tasks)
    if not tasks:
        return []
    supervisor = _Supervisor(
        worker_fn, state, context, min(processes, len(tasks)), initializer, initargs, policy, report
    )
    return supervisor.run()


class _Supervisor:
    """The event loop driving one supervised pass (see :func:`run_supervised`)."""

    def __init__(
        self, worker_fn, state, context, processes, initializer, initargs, policy, report
    ) -> None:
        self.worker_fn = worker_fn
        self.state = state
        self.context = context
        self.processes = processes
        self.initializer = initializer
        self.initargs = initargs
        self.policy = policy
        self.report = report
        self.workers: List[_Worker] = []
        self.respawns = 0
        self.degraded = False
        self._parent_initialized = False

    # ------------------------------------------------------------ lifecycle
    def run(self) -> List[Any]:
        try:
            try:
                self.workers = [self._spawn() for _ in range(self.processes)]
            except OSError as error:  # pragma: no cover - fork/spawn failure
                self._degrade(f"worker spawn failed: {error}")
            while not self.state.done:
                self._check_deadline()
                if self.degraded:
                    self._run_remaining_serially()
                    break
                self._dispatch()
                self._collect()
                self._police()
        finally:
            self._shutdown(terminate=True)
        return [self.state.results[i] for i in range(len(self.state.tasks))]

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        process = self.context.Process(
            target=_worker_main,
            args=(child_conn, self.worker_fn, self.initializer, self.initargs, self.policy.faults),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _shutdown(self, terminate: bool) -> None:
        for worker in self.workers:
            try:
                worker.close(terminate=terminate)
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self.workers = []

    def _check_deadline(self) -> None:
        if self.policy.deadline is not None and time.monotonic() > self.policy.deadline:
            raise DeadlineExceeded(
                f"supervised pass exceeded its deadline with "
                f"{len(self.state.unfinished())} of {len(self.state.tasks)} chunks unfinished"
            )

    # ------------------------------------------------------------- the loop
    def _dispatch(self) -> None:
        now = time.monotonic()
        for index, worker in enumerate(self.workers):
            if worker.task is not None or not self.state.pending:
                continue
            if not worker.process.is_alive():
                # An idle worker that died (e.g. killed while draining) is
                # replaced before it can be handed a chunk.
                self._replace(index, reason="idle worker died")
                worker = self.workers[index] if index < len(self.workers) else None
                if worker is None or self.degraded:
                    return
            chunk_id = self.state.next_ready(now)
            if chunk_id is None:
                return
            try:
                worker.conn.send((chunk_id, self.state.attempts[chunk_id], self.state.tasks[chunk_id]))
            except (BrokenPipeError, OSError):
                # Death raced the liveness check: requeue without burning an
                # attempt (the chunk never reached a worker) and repair.
                self.state.pending.appendleft(chunk_id)
                self._replace(index, reason="dispatch to dead worker")
                return
            worker.task = chunk_id
            worker.started = now

    def _collect(self) -> None:
        busy = {id(w.conn): w for w in self.workers if w.task is not None}
        if not busy:
            if self.state.pending:
                # Everything is backing off; sleep one poll tick.
                time.sleep(self.policy.poll_interval)
            return
        ready = connection.wait(
            [w.conn for w in busy.values()], timeout=self.policy.poll_interval
        )
        for conn in ready:
            worker = busy[id(conn)]
            try:
                chunk_id, ok, value = conn.recv()
            except (EOFError, OSError):
                continue  # dead worker: _police handles it via is_alive()
            worker.task = None
            if ok:
                self.state.results[chunk_id] = value
            else:
                self.report.record("chunk_error", chunk=chunk_id, error=value)
                self._failure(chunk_id, reason=f"error: {value}")

    def _police(self) -> None:
        now = time.monotonic()
        for index, worker in enumerate(list(self.workers)):
            if self.degraded:
                return
            if worker.task is None:
                continue
            chunk_id = worker.task
            if not worker.process.is_alive():
                exitcode = worker.process.exitcode
                self.report.record("worker_death", chunk=chunk_id, exitcode=exitcode)
                worker.task = None
                self._failure(chunk_id, reason=f"worker died (exitcode {exitcode})")
                self._replace(index, reason=f"worker death on chunk {chunk_id}")
            elif (
                self.policy.chunk_timeout is not None
                and now - worker.started > self.policy.chunk_timeout
            ):
                self.report.record(
                    "chunk_timeout",
                    chunk=chunk_id,
                    seconds=round(now - worker.started, 3),
                )
                worker.process.terminate()
                worker.task = None
                self._failure(chunk_id, reason="chunk timeout")
                self._replace(index, reason=f"timeout on chunk {chunk_id}")

    # ------------------------------------------------------------- recovery
    def _failure(self, chunk_id: int, reason: str) -> None:
        self.state.attempts[chunk_id] += 1
        attempt = self.state.attempts[chunk_id]
        if attempt > self.policy.max_retries:
            self.report.record(
                "quarantine", chunk=chunk_id, after_attempts=attempt, reason=reason
            )
            self.state.results[chunk_id] = self._run_in_parent(chunk_id)
            return
        delay = self.policy.backoff(attempt)
        self.report.record(
            "retry", chunk=chunk_id, attempt=attempt, backoff_seconds=delay, reason=reason
        )
        self.state.ready_at[chunk_id] = time.monotonic() + delay
        self.state.pending.append(chunk_id)

    def _replace(self, index: int, reason: str) -> None:
        dead = self.workers[index]
        try:
            dead.close(terminate=True)
        except Exception:  # pragma: no cover - teardown best effort
            pass
        self.respawns += 1
        if self.respawns > self.policy.max_worker_respawns:
            self.workers.pop(index)
            self._degrade(
                f"{self.respawns} worker replacements exceeded the budget "
                f"({self.policy.max_worker_respawns}); last: {reason}"
            )
            return
        try:
            self.workers[index] = self._spawn()
            self.report.record("worker_respawn", respawns=self.respawns, reason=reason)
        except OSError as error:  # pragma: no cover - spawn failure
            self.workers.pop(index)
            self._degrade(f"worker respawn failed: {error}")

    def _degrade(self, reason: str) -> None:
        self.degraded = True
        self.report.record("degrade_serial", reason=reason)
        # Requeue whatever in-flight workers were holding; the serial sweep
        # below picks every unfinished chunk up in task order.
        self._shutdown(terminate=True)

    def _run_in_parent(self, chunk_id: int):
        """Serial re-execution in the parent: the quarantine/degradation path.

        Runs without fault injection (faults model *worker* failures; a
        chunk that also fails here raises a real traceback to the caller —
        wrapped so the run report context is attached).
        """
        if not self._parent_initialized and self.initializer is not None:
            self.initializer(*self.initargs)
            self._parent_initialized = True
        try:
            return self.worker_fn(self.state.tasks[chunk_id])
        except Exception as error:
            raise SupervisionError(
                f"chunk {chunk_id} failed its serial re-execution after "
                f"{self.state.attempts[chunk_id]} supervised attempts: {error}"
            ) from error

    def _run_remaining_serially(self) -> None:
        for chunk_id in self.state.unfinished():
            self._check_deadline()
            self.state.results[chunk_id] = self._run_in_parent(chunk_id)
