"""Atomic, checksummed checkpoints for deterministic survey streams.

The constructive enumeration work (PR 7) made every survey stream
deterministic: the orbit stream of a :class:`repro.adversaries.RestrictedSpace`
and the canonical-class stream of a built protocol complex replay identically
from their *descriptions*.  That turns crash safety into bookkeeping — a
checkpoint is just

* the **spec**: a JSON description of the stream (context, restriction
  flags, symmetry/engine/backend choices, RNG seeds where a stream uses
  them) that resume validates before trusting a stored cursor;
* the **cursor**: how many stream items have been folded into the
  aggregates;
* the **payload**: the partial aggregates themselves (a
  :class:`repro.verification.checker.CheckReport` in serialized form, or
  the census counters) — everything needed to continue folding from
  ``cursor`` and end byte-identical to an uninterrupted run.

Durability is torn-write-proof: each checkpoint is written to a temporary
file, ``fsync``ed, atomically renamed into place, and the directory entry is
``fsync``ed too; the body carries a SHA-256 over its canonical JSON, so a
truncated or bit-flipped file is *rejected* at load (:class:`CheckpointError`
with the reason) rather than silently resuming wrong.  The store keeps the
newest ``keep`` checkpoints, so damaging the newest one falls back to its
predecessor — the recovery path the fault-injection battery drives.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .faults import FaultPlan
from .report import RunReport

#: Version of the on-disk checkpoint layout.  Bump on any incompatible
#: change to the envelope or payload conventions; loaders reject mismatches.
CHECKPOINT_SCHEMA = 1

_CHECKPOINT_NAME = re.compile(r"^ckpt-(\d{12})\.json$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be trusted (corrupt, truncated, wrong stream)."""


def canonical_json(value: Any) -> str:
    """The canonical (sorted, compact) JSON form used for hashing and specs."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Checkpoint:
    """One resumable position of a deterministic survey stream."""

    spec: Dict[str, Any]
    cursor: int
    payload: Dict[str, Any]
    schema: int = CHECKPOINT_SCHEMA
    #: Seeds of any RNGs the stream consumes (deterministic streams carry
    #: none; sampled ensembles record theirs so resume replays the draw).
    rng: Dict[str, int] = field(default_factory=dict)

    def body(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "spec": self.spec,
            "cursor": self.cursor,
            "payload": self.payload,
            "rng": self.rng,
        }

    def digest(self) -> str:
        return hashlib.sha256(canonical_json(self.body()).encode("utf-8")).hexdigest()


def write_checkpoint(path: str, checkpoint: Checkpoint) -> str:
    """Atomically persist ``checkpoint`` at ``path`` (tmp + fsync + rename)."""
    document = dict(checkpoint.body(), sha256=checkpoint.digest())
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # The tmp file lives in the destination directory so the rename is
    # same-filesystem and therefore atomic.
    fd, tmp_path = tempfile.mkstemp(prefix=".ckpt-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Durability of the rename itself: fsync the directory entry.
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def load_checkpoint(path: str, spec: Optional[Dict[str, Any]] = None) -> Checkpoint:
    """Load and validate one checkpoint file.

    Raises :class:`CheckpointError` — never returns garbage — when the file
    is unreadable, not JSON, the wrong schema version, fails its checksum
    (truncation/corruption), or records a different stream ``spec`` than the
    one the caller is about to resume.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise CheckpointError(f"checkpoint {path} is unreadable: {error}") from error
    except ValueError as error:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON (truncated or corrupted write): {error}"
        ) from error
    if not isinstance(document, dict):
        raise CheckpointError(f"checkpoint {path} has no JSON object envelope")
    schema = document.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has schema version {schema!r}; this runtime "
            f"reads version {CHECKPOINT_SCHEMA} — re-run without --resume to start fresh"
        )
    checkpoint = Checkpoint(
        spec=document.get("spec", {}),
        cursor=document.get("cursor", -1),
        payload=document.get("payload", {}),
        schema=schema,
        rng=document.get("rng", {}),
    )
    recorded = document.get("sha256")
    if recorded != checkpoint.digest():
        raise CheckpointError(
            f"checkpoint {path} fails its SHA-256 self-check "
            f"(corrupted or tampered content; refusing to resume from it)"
        )
    if not isinstance(checkpoint.cursor, int) or checkpoint.cursor < 0:
        raise CheckpointError(f"checkpoint {path} has invalid cursor {checkpoint.cursor!r}")
    if spec is not None and canonical_json(checkpoint.spec) != canonical_json(spec):
        raise CheckpointError(
            f"checkpoint {path} records a different run spec than the one being "
            f"resumed (stored {canonical_json(checkpoint.spec)}, expected "
            f"{canonical_json(spec)}); refusing to mix streams"
        )
    return checkpoint


class CheckpointStore:
    """A directory of rotated checkpoints for one resumable run.

    Files are named ``ckpt-<cursor padded to 12 digits>.json`` so
    lexicographic order is cursor order.  ``save`` writes atomically and
    prunes down to the newest ``keep`` files (two by default: the newest
    plus one fallback, which is what lets :meth:`latest` survive a damaged
    newest checkpoint).  A :class:`FaultPlan` may be attached to sabotage
    saves deterministically (the chaos battery's torn-write model).
    """

    def __init__(
        self,
        directory: str,
        keep: int = 2,
        faults: Optional[FaultPlan] = None,
        report: Optional[RunReport] = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = os.path.abspath(directory)
        self.keep = keep
        self.faults = faults
        self.report = report
        #: Ordinal of the next save (the fault plan keys sabotage off it).
        self.saves = 0
        self._sweep_orphans()

    def _sweep_orphans(self) -> None:
        """Remove ``.ckpt-*.tmp`` files orphaned by a crash mid-write.

        ``write_checkpoint`` creates its tmp file in the destination
        directory (so the rename is atomic); a crash between ``mkstemp`` and
        ``os.replace`` strands it there forever.  Completed checkpoints are
        never named ``.ckpt-*.tmp``, so sweeping the pattern on store open
        is safe — concurrent stores never share a checkpoint directory (the
        spec/cursor naming assumes one run per directory).
        """
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.startswith(".ckpt-") and name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - races with manual cleanup
                    pass

    # ---------------------------------------------------------------- paths
    def paths(self) -> List[str]:
        """Existing checkpoint files, oldest first."""
        if not os.path.isdir(self.directory):
            return []
        names = sorted(
            name for name in os.listdir(self.directory) if _CHECKPOINT_NAME.match(name)
        )
        return [os.path.join(self.directory, name) for name in names]

    def _path_for(self, cursor: int) -> str:
        return os.path.join(self.directory, f"ckpt-{cursor:012d}.json")

    # ----------------------------------------------------------------- save
    def save(self, checkpoint: Checkpoint) -> str:
        """Atomically write one checkpoint, rotate old ones, apply sabotage."""
        path = write_checkpoint(self._path_for(checkpoint.cursor), checkpoint)
        if self.report is not None:
            self.report.record("checkpoint_saved", cursor=checkpoint.cursor, path=path)
        for stale in self.paths()[: -self.keep]:
            os.unlink(stale)
        if self.faults is not None:
            damage = self.faults.sabotage_checkpoint(self.saves, path)
            if damage is not None and self.report is not None:
                self.report.record("fault_installed", checkpoint=path, damage=damage)
        self.saves += 1
        return path

    # ----------------------------------------------------------------- load
    def latest(
        self, spec: Optional[Dict[str, Any]] = None, strict: bool = False
    ) -> Optional[Checkpoint]:
        """The newest *valid* checkpoint, or ``None`` when none survives.

        Invalid files (truncated, corrupted, wrong schema or spec) are
        skipped newest-first with a ``checkpoint_rejected`` event each —
        damage to the newest checkpoint falls back to its predecessor.
        ``strict=True`` instead re-raises the first validation failure
        (the rejection-surface the corruption tests pin).
        """
        for path in reversed(self.paths()):
            try:
                return load_checkpoint(path, spec=spec)
            except CheckpointError as error:
                if strict:
                    raise
                if self.report is not None:
                    self.report.record("checkpoint_rejected", path=path, error=str(error))
        return None
