"""Deterministic fault injection: the chaos harness of the resilient runtime.

Fault tolerance that is only exercised by real hardware failures is
untested fault tolerance.  This module makes every failure mode the
supervisor and checkpoint layers claim to survive *injectable on demand and
reproducible by seed*:

* **worker kills** — a worker ``SIGKILL``s itself at chosen chunk indices
  (the OOM-killer / segfault model: no exception, no cleanup, just a dead
  process the supervisor must detect);
* **chunk errors** — a chunk attempt raises :class:`InjectedFault` (the
  poison-chunk model exercising retry and quarantine);
* **delays** — a chunk attempt sleeps before executing (the stuck-worker
  model exercising per-chunk timeouts);
* **checkpoint sabotage** — a just-written checkpoint file is truncated or
  bit-flipped (the torn-write / bad-disk model exercising checksum
  rejection and fallback to the previous checkpoint);
* **numpy absence** — the GF(2) kernel is pinned to its pure-Python
  ``array('Q')`` word backend for the run, so the chaos battery covers the
  dependency-free configuration without a separate interpreter.

Faults keyed by chunk index carry an *attempt budget*: ``{3: 1}`` kills
chunk 3's first attempt only, so its retry succeeds — which is exactly the
recovery path under test.  A plan is inert unless explicitly passed in (or
activated through the ``REPRO_FAULTS`` environment variable, whose value is
the JSON form of a plan), so production runs pay nothing.

Plans are plain picklable data: the supervisor ships them to workers, and
:func:`FaultPlan.seeded` derives a reproducible plan from ``(seed, chunk
count)`` for randomized chaos batteries.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple

#: Environment variable holding a JSON fault plan (chaos smoke runs).
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """The exception a ``fail_chunks`` entry raises inside a worker."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule (see module docstring).

    ``kill_chunks`` / ``fail_chunks`` map chunk index → number of attempts
    to sabotage (attempts beyond the budget run clean); ``delay_chunks``
    maps chunk index → ``(seconds, attempts)``.  ``truncate_checkpoints`` /
    ``corrupt_checkpoints`` name checkpoint-save ordinals (0-based, counted
    per store) to damage after the atomic write completes.  ``no_numpy``
    pins the GF(2) word backend to ``array`` for the run.
    """

    seed: Optional[int] = None
    kill_chunks: Dict[int, int] = field(default_factory=dict)
    fail_chunks: Dict[int, int] = field(default_factory=dict)
    delay_chunks: Dict[int, Tuple[float, int]] = field(default_factory=dict)
    truncate_checkpoints: Tuple[int, ...] = ()
    corrupt_checkpoints: Tuple[int, ...] = ()
    no_numpy: bool = False
    #: Result-store sabotage: row-write ordinals to damage after commit
    #: (``corrupt`` = bit-flip a payload char, ``torn`` = truncate the
    #: payload mid-document) and commit ordinals to fault (``busy`` = one
    #: injected SQLITE_BUSY, retried clean; ``diskfull`` = non-transient
    #: commit failure, the batch is dropped).
    corrupt_store_rows: Tuple[int, ...] = ()
    torn_store_rows: Tuple[int, ...] = ()
    busy_store_commits: Tuple[int, ...] = ()
    diskfull_store_commits: Tuple[int, ...] = ()
    #: Service-layer sabotage (the job queue / job runner of
    #: :mod:`repro.service`).  ``kill_job_owner`` maps a claim ordinal to the
    #: number of checkpoint saves the owning runner is allowed before it
    #: ``SIGKILL``s itself mid-job (the dead-driver model: the lease must
    #: expire and another runner must reclaim and resume from the
    #: checkpoint).  ``expire_lease`` names claim ordinals whose lease is
    #: written already expired, so reclaim is immediately exercisable;
    #: ``delay_heartbeat`` names heartbeat ordinals that are silently
    #: dropped (the stuck-heartbeat model: the lease lapses under a live
    #: owner); ``drop_job_commit`` names queue commit ordinals that fail
    #: non-transiently (the queue's disk-full model: the operation errors
    #: cleanly instead of corrupting state).
    kill_job_owner: Dict[int, int] = field(default_factory=dict)
    expire_lease: Tuple[int, ...] = ()
    delay_heartbeat: Tuple[int, ...] = ()
    drop_job_commit: Tuple[int, ...] = ()

    # ------------------------------------------------------------ chunk side
    def apply_chunk_faults(self, chunk_id: int, attempt: int) -> None:
        """Sabotage one chunk attempt (called inside the worker, pre-execution)."""
        delay = self.delay_chunks.get(chunk_id)
        if delay is not None and attempt < delay[1]:
            time.sleep(delay[0])
        if attempt < self.kill_chunks.get(chunk_id, 0):
            # The OOM/segfault model: die without unwinding.  SIGKILL cannot
            # be caught, so the supervisor sees a dead process, not an error.
            os.kill(os.getpid(), signal.SIGKILL)
        if attempt < self.fail_chunks.get(chunk_id, 0):
            raise InjectedFault(
                f"injected failure on chunk {chunk_id} attempt {attempt}"
            )

    def install(self) -> None:
        """Apply process-wide fault configuration (worker init and run start)."""
        if self.no_numpy:
            # Pin the packed GF(2) kernel to its pure-Python word store: the
            # closest in-process simulation of numpy being uninstallable
            # (same dispatch decision the import-time probe makes).
            from ..topology import gf2

            gf2.BACKEND = "array"
            os.environ[gf2.BACKEND_ENV] = "array"

    # ------------------------------------------------------- checkpoint side
    def sabotage_checkpoint(self, ordinal: int, path: str) -> Optional[str]:
        """Damage a just-written checkpoint file; returns the damage kind."""
        if ordinal in self.truncate_checkpoints:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
            return "truncated"
        if ordinal in self.corrupt_checkpoints:
            with open(path, "r+b") as handle:
                data = bytearray(handle.read())
                if data:
                    data[len(data) // 2] ^= 0xFF
                handle.seek(0)
                handle.write(bytes(data))

            return "corrupted"
        return None

    # ------------------------------------------------------------- store side
    def store_row_damage(self, ordinal: int) -> Optional[str]:
        """Damage kind for the given committed-row ordinal, if any."""
        if ordinal in self.corrupt_store_rows:
            return "corrupt"
        if ordinal in self.torn_store_rows:
            return "torn"
        return None

    def store_commit_fault(self, ordinal: int) -> Optional[str]:
        """Commit fault for the given flush ordinal, if any."""
        if ordinal in self.busy_store_commits:
            return "busy"
        if ordinal in self.diskfull_store_commits:
            return "diskfull"
        return None

    # ----------------------------------------------------------- service side
    def job_owner_kill(self, claim_ordinal: int) -> Optional[int]:
        """Checkpoint saves the owner of this claim may make before SIGKILL."""
        return self.kill_job_owner.get(claim_ordinal)

    def lease_preexpired(self, claim_ordinal: int) -> bool:
        """Whether this claim's lease is written already expired."""
        return claim_ordinal in self.expire_lease

    def heartbeat_dropped(self, ordinal: int) -> bool:
        """Whether this heartbeat is silently dropped (lease left to lapse)."""
        return ordinal in self.delay_heartbeat

    def job_commit_dropped(self, ordinal: int) -> bool:
        """Whether this queue commit fails non-transiently."""
        return ordinal in self.drop_job_commit

    # ------------------------------------------------------------- factories
    @classmethod
    def seeded(
        cls,
        seed: int,
        chunks: int,
        kills: int = 1,
        failures: int = 0,
        delays: int = 0,
        delay_seconds: float = 0.2,
        saves: int = 0,
        truncations: int = 0,
        corruptions: int = 0,
    ) -> "FaultPlan":
        """A reproducible plan: the given number of each fault, placed by seed.

        Chunk faults land on distinct chunk indices drawn without replacement
        from ``range(chunks)``; checkpoint faults on distinct save ordinals
        from ``range(saves)``.  Same seed, same plan — the chaos battery's
        failures replay exactly.
        """
        rng = random.Random(seed)
        chunk_ids = list(range(chunks))
        rng.shuffle(chunk_ids)
        picks = iter(chunk_ids)
        plan = cls(
            seed=seed,
            kill_chunks={next(picks): 1 for _ in range(min(kills, chunks))},
            fail_chunks={next(picks): 1 for _ in range(min(failures, chunks))},
            delay_chunks={
                next(picks): (delay_seconds, 1) for _ in range(min(delays, chunks))
            },
        )
        if saves:
            save_ids = list(range(saves))
            rng.shuffle(save_ids)
            save_picks = iter(save_ids)
            plan = replace(
                plan,
                truncate_checkpoints=tuple(
                    sorted(next(save_picks) for _ in range(min(truncations, saves)))
                ),
                corrupt_checkpoints=tuple(
                    sorted(next(save_picks) for _ in range(min(corruptions, saves)))
                ),
            )
        return plan

    # ---------------------------------------------------------- serialization
    def to_json(self) -> str:
        payload = asdict(self)
        # JSON objects key by string; keep the round-trip lossless.
        payload["kill_chunks"] = {str(k): v for k, v in self.kill_chunks.items()}
        payload["fail_chunks"] = {str(k): v for k, v in self.fail_chunks.items()}
        payload["delay_chunks"] = {
            str(k): list(v) for k, v in self.delay_chunks.items()
        }
        payload["truncate_checkpoints"] = list(self.truncate_checkpoints)
        payload["corrupt_checkpoints"] = list(self.corrupt_checkpoints)
        payload["corrupt_store_rows"] = list(self.corrupt_store_rows)
        payload["torn_store_rows"] = list(self.torn_store_rows)
        payload["busy_store_commits"] = list(self.busy_store_commits)
        payload["diskfull_store_commits"] = list(self.diskfull_store_commits)
        payload["kill_job_owner"] = {str(k): v for k, v in self.kill_job_owner.items()}
        payload["expire_lease"] = list(self.expire_lease)
        payload["delay_heartbeat"] = list(self.delay_heartbeat)
        payload["drop_job_commit"] = list(self.drop_job_commit)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(
            seed=payload.get("seed"),
            kill_chunks={int(k): int(v) for k, v in payload.get("kill_chunks", {}).items()},
            fail_chunks={int(k): int(v) for k, v in payload.get("fail_chunks", {}).items()},
            delay_chunks={
                int(k): (float(v[0]), int(v[1]))
                for k, v in payload.get("delay_chunks", {}).items()
            },
            truncate_checkpoints=tuple(payload.get("truncate_checkpoints", ())),
            corrupt_checkpoints=tuple(payload.get("corrupt_checkpoints", ())),
            no_numpy=bool(payload.get("no_numpy", False)),
            corrupt_store_rows=tuple(payload.get("corrupt_store_rows", ())),
            torn_store_rows=tuple(payload.get("torn_store_rows", ())),
            busy_store_commits=tuple(payload.get("busy_store_commits", ())),
            diskfull_store_commits=tuple(payload.get("diskfull_store_commits", ())),
            kill_job_owner={
                int(k): int(v) for k, v in payload.get("kill_job_owner", {}).items()
            },
            expire_lease=tuple(payload.get("expire_lease", ())),
            delay_heartbeat=tuple(payload.get("delay_heartbeat", ())),
            drop_job_commit=tuple(payload.get("drop_job_commit", ())),
        )

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        text = os.environ.get(FAULTS_ENV, "").strip()
        if not text:
            return None
        return cls.from_json(text)
