"""Resilient survey runners: checkpointed, supervised, budgeted sweeps.

The execution layer the CLI's ``sweep --checkpoint`` / ``census
--checkpoint`` run on, and the stepping stone to the survey-as-a-service
store: each runner drives a *deterministic* stream (the constructive orbit
stream of a :class:`repro.adversaries.RestrictedSpace`, a plain enumeration,
or the canonical-class stream of a built protocol complex) in batches,
folding each batch into the aggregate a consumer already knows
(:class:`repro.verification.checker.CheckReport`,
:class:`repro.topology.protocol_complex.CapacityCensus`) and flushing an
atomic checkpoint after every batch.  Because the streams replay
identically from their specs, a resumed run folds exactly the items an
uninterrupted run would have folded, in the same order — results are
byte-identical (``tests/test_resilience.py`` pins interrupted-at-every-
batch-boundary == uninterrupted).

Budgets turn hard death into checkpoint-and-stop: a wall-clock
``deadline_seconds`` and a peak-RSS ``max_rss_kb`` are checked at batch
boundaries (and the deadline also bounds the supervised pool mid-batch);
when either trips, the runner flushes its checkpoint, records the stop on
the :class:`RunReport`, and returns a partial :class:`ResilientOutcome`
with ``completed=False`` — resume later with the same spec.

``KeyboardInterrupt`` gets the same treatment (flush, record, re-raise),
which is what lets the CLI exit 130 with a resumable run on disk instead of
leaking pool workers and three hours of work.
"""

from __future__ import annotations

import itertools
import resource
import sys
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from .checkpoint import Checkpoint, CheckpointStore
from .report import RunReport
from .supervisor import DeadlineExceeded, SupervisionPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import ResultStore

#: Stream items folded between checkpoint flushes.  Large enough that the
#: trie keeps its prefix sharing inside one sweep call (smaller batches
#: measurably re-compute shared round prefixes across batch boundaries) and
#: the atomic-write cost stays <5% (gated by
#: ``benchmarks/bench_resilience.py``), small enough that an interrupted
#: hour-scale survey loses minutes, not hours.
DEFAULT_BATCH_SIZE = 8192


def peak_rss_kb() -> int:
    """This process's peak RSS in KiB (``ru_maxrss`` is bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak // 1024 if sys.platform == "darwin" else peak


@dataclass(frozen=True)
class ResilientOutcome:
    """What a resilient runner produced — possibly a checkpointed prefix.

    ``value`` is the consumer aggregate (``CheckReport`` / ``CapacityCensus``)
    over the ``cursor`` stream items folded so far; ``completed`` says whether
    that is the whole stream.  ``stop_reason`` is ``None`` on completion, else
    ``"deadline"`` or ``"rss"``; ``resumed_from`` is the checkpoint cursor the
    run started at (``None`` for a fresh run).
    """

    value: Any
    report: RunReport
    completed: bool
    stop_reason: Optional[str]
    cursor: int
    resumed_from: Optional[int]


class _BudgetGovernor:
    """Shared deadline/RSS bookkeeping of one resilient run."""

    def __init__(
        self, deadline_seconds: Optional[float], max_rss_kb: Optional[int], report: RunReport
    ) -> None:
        self.deadline = (
            time.monotonic() + deadline_seconds if deadline_seconds is not None else None
        )
        self.max_rss_kb = max_rss_kb
        self.report = report

    def arm(self, policy: Optional[SupervisionPolicy]) -> Optional[SupervisionPolicy]:
        """Give the supervised pool the same absolute deadline (mid-batch aborts)."""
        if policy is None or self.deadline is None or policy.deadline is not None:
            return policy
        return replace(policy, deadline=self.deadline)

    def stop_reason(self, cursor: int) -> Optional[str]:
        """The budget that tripped at this batch boundary, if any."""
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self.report.record("deadline_stop", cursor=cursor)
            return "deadline"
        if self.max_rss_kb is not None and peak_rss_kb() > self.max_rss_kb:
            self.report.record("rss_stop", cursor=cursor, peak_rss_kb=peak_rss_kb())
            return "rss"
        return None


def _batched(stream: Iterator, size: int) -> Iterator[List]:
    while True:
        batch = list(itertools.islice(stream, size))
        if not batch:
            return
        yield batch


def _resume_cursor(
    store: Optional[CheckpointStore],
    resume: bool,
    spec: Dict[str, Any],
    report: RunReport,
) -> Tuple[int, Optional[Dict[str, Any]], Optional[int]]:
    """(cursor, payload, resumed_from) off the newest valid checkpoint."""
    if store is None or not resume:
        return 0, None, None
    checkpoint = store.latest(spec=spec)
    if checkpoint is None:
        return 0, None, None
    report.record("resume", cursor=checkpoint.cursor)
    return checkpoint.cursor, checkpoint.payload, checkpoint.cursor


# --------------------------------------------------------------- checker runs
def _checker_stream(space, symmetry: str) -> Iterator[Tuple[int, Any, int]]:
    """The deterministic ``(index, adversary, weight)`` stream of a space.

    ``symmetry="constructive"`` generates canonical representatives (orbit
    weights); ``"quotient"`` streams the hash-dedup orbit front (the oracle
    ordering); ``"none"`` streams every member with weight 1.  All three
    replay identically from the space description, which is what makes the
    cursor meaningful across process lifetimes.
    """
    if symmetry in ("constructive", "quotient"):
        mode = "constructive" if symmetry == "constructive" else "dedup"
        for index, orbit in enumerate(space.orbits(symmetry=mode)):
            yield index, orbit.representative, orbit.size
    elif symmetry == "none":
        for index, adversary in enumerate(space):
            yield index, adversary, 1
    else:  # pragma: no cover - validated upstream
        raise ValueError(f"unknown symmetry {symmetry!r}")


def checker_spec(
    protocol, space, t: int, symmetry: str, engine: str, enforce_paper_bound: bool
) -> Dict[str, Any]:
    """The stream-identity spec a checker checkpoint must match to resume."""
    context = space.context
    return {
        "kind": "check",
        "schema_note": "cursor counts stream items (orbits or adversaries)",
        "protocol": getattr(protocol, "name", type(protocol).__name__),
        "n": context.n,
        "t": t,
        "k": context.k,
        "max_crash_round": space.max_crash_round,
        "receiver_policy": space.receiver_policy,
        "max_failures": space.max_failures,
        "limit": space.limit,
        "symmetry": symmetry,
        "engine": engine,
        "enforce_paper_bound": enforce_paper_bound,
    }


def _check_report_payload(report) -> Dict[str, Any]:
    """Serialize a ``CheckReport`` losslessly (order-preserving histogram)."""
    return {
        "runs_checked": report.runs_checked,
        "max_decision_time": report.max_decision_time,
        "histogram": [[time_, count] for time_, count in report.decision_time_histogram.items()],
        "violations": [
            [index, violation.property_name, violation.message, violation.process]
            for index, violation in report.violations
        ],
    }


def _check_report_from_payload(protocol_name: str, payload: Dict[str, Any]):
    from ..verification.checker import CheckReport
    from ..verification.properties import Violation

    report = CheckReport(protocol=protocol_name)
    report.runs_checked = payload["runs_checked"]
    report.max_decision_time = payload["max_decision_time"]
    report.decision_time_histogram = {time_: count for time_, count in payload["histogram"]}
    report.violations = [
        (index, Violation(property_name, message, process))
        for index, property_name, message, process in payload["violations"]
    ]
    return report


def _check_verdict(run, run_violations) -> Dict[str, Any]:
    """The memoizable outcome of checking one adversary (store payload)."""
    return {
        "decision_time": run.last_decision_time(correct_only=True),
        "violations": [
            [violation.property_name, violation.message, violation.process]
            for violation in run_violations
        ],
    }


def _fold_verdict(aggregate, index: int, verdict: Dict[str, Any], weight: int) -> None:
    """Fold one memoized verdict into a ``CheckReport``.

    Must mutate the aggregate exactly as ``CheckReport.record`` would for
    the run the verdict was computed from — including histogram *insertion
    order*, which the serialized form preserves — so store-enabled and
    store-disabled sweeps stay byte-identical.
    """
    from ..verification.properties import Violation

    aggregate.runs_checked += weight
    for property_name, message, process in verdict["violations"]:
        aggregate.violations.append((index, Violation(property_name, message, process)))
    last = verdict["decision_time"]
    if last is not None:
        aggregate.decision_time_histogram[last] = (
            aggregate.decision_time_histogram.get(last, 0) + weight
        )
        aggregate.max_decision_time = max(aggregate.max_decision_time, last)


def resilient_check(
    protocol,
    space,
    t: Optional[int] = None,
    *,
    symmetry: str = "constructive",
    engine: str = "batch",
    processes: Optional[int] = None,
    chunk_size: Optional[int] = None,
    mp_context: Optional[str] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    store: Optional[CheckpointStore] = None,
    resume: bool = False,
    result_store: Optional["ResultStore"] = None,
    policy: Optional[SupervisionPolicy] = None,
    deadline_seconds: Optional[float] = None,
    max_rss_kb: Optional[int] = None,
    enforce_paper_bound: bool = True,
    report: Optional[RunReport] = None,
) -> ResilientOutcome:
    """Checkpointed, supervised :func:`repro.verification.check_protocol`.

    ``space`` must be a :class:`repro.adversaries.RestrictedSpace` (the spec
    that makes the stream replayable).  A completed outcome's ``value`` is
    the same :class:`CheckReport` the plain ``symmetry="constructive"``
    checker path produces over the space.

    ``result_store`` is the durable cross-run memo
    (:class:`repro.store.ResultStore`): verdicts found there skip the engine
    entirely, verdicts computed here are written back at the same batch
    boundaries the checkpoint flushes at.  The store key excludes
    engine/symmetry (a verdict is a property of the adversary), so quotient
    and exhaustive sweeps share entries.  Folding order is the stream order
    either way, so store-enabled output is byte-identical.
    """
    from ..engine import SweepRunner, validate_engine_choice
    from ..model.run import Run
    from ..symmetry import validate_symmetry_choice
    from ..verification.properties import check_run_for_protocol

    validate_engine_choice(engine, processes)
    validate_symmetry_choice(symmetry)
    if t is None:
        t = space.context.t
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    report = report if report is not None else RunReport()
    if store is not None and store.report is None:
        store.report = report
    governor = _BudgetGovernor(deadline_seconds, max_rss_kb, report)
    policy = governor.arm(policy)

    spec = checker_spec(protocol, space, t, symmetry, engine, enforce_paper_bound)
    protocol_name = getattr(protocol, "name", "protocol")
    store_spec_h = None
    if result_store is not None:
        from ..store import adversary_key, check_store_spec, spec_hash

        if result_store.report is None:
            result_store.report = report
        store_spec_h = spec_hash(
            check_store_spec(spec["protocol"], t, space.context.k, enforce_paper_bound)
        )
    cursor, payload, resumed_from = _resume_cursor(store, resume, spec, report)
    aggregate = (
        _check_report_from_payload(protocol_name, payload)
        if payload is not None
        else _check_report_from_payload(protocol_name, _EMPTY_CHECK_PAYLOAD)
    )

    runner = None
    if engine == "batch":
        runner = SweepRunner(
            protocol,
            t,
            processes=processes,
            chunk_size=chunk_size,
            mp_context=mp_context,
            supervision=policy,
            runtime_report=report,
        )

    stream = itertools.islice(_checker_stream(space, symmetry), cursor, None)
    stop_reason = None
    completed = False
    # Checkpoints always describe a batch *boundary*: the payload snapshot is
    # taken right after a batch finishes folding, so a mid-batch interrupt
    # flushes the last boundary state, never a partially-folded aggregate
    # (which would double-count the partial batch on resume).
    boundary_payload = _check_report_payload(aggregate)

    def flush() -> None:
        if result_store is not None:
            result_store.flush()
        if store is not None:
            store.save(Checkpoint(spec=spec, cursor=cursor, payload=boundary_payload))

    try:
        for batch in _batched(stream, batch_size):
            # Consult the durable memo first: verdicts found there skip the
            # engine; only the misses are swept.  ``available`` is re-read
            # every batch so a store that degrades mid-run falls back to
            # pure compute from the next batch on.
            use_store = result_store is not None and result_store.available
            if use_store:
                keys = [adversary_key(adversary) for _index, adversary, _weight in batch]
                found = result_store.get_many("check", store_spec_h, keys)
            else:
                keys, found = (), {}
            if use_store and found:
                representatives = [
                    adversary
                    for (_index, adversary, _weight), key in zip(batch, keys)
                    if key not in found
                ]
            else:
                representatives = [adversary for _index, adversary, _weight in batch]
            if runner is not None:
                runs = runner.sweep(representatives) if representatives else []
            else:
                runs = [Run(protocol, adversary, t) for adversary in representatives]
            runs_iter = iter(runs)
            for position, (index, _adversary, weight) in enumerate(batch):
                hit = found.get(keys[position]) if use_store else None
                if hit is not None:
                    _fold_verdict(aggregate, index, hit, weight)
                    continue
                run = next(runs_iter)
                run_violations = check_run_for_protocol(run, enforce_paper_bound)
                aggregate.record(index, run, run_violations, weight=weight)
                if use_store:
                    result_store.put(
                        "check",
                        store_spec_h,
                        keys[position],
                        _check_verdict(run, run_violations),
                    )
            cursor += len(batch)
            boundary_payload = _check_report_payload(aggregate)
            flush()
            stop_reason = governor.stop_reason(cursor)
            if stop_reason is not None:
                break
        else:
            completed = True
    except DeadlineExceeded:
        # Mid-batch deadline abort from the supervised pool: the aggregate is
        # still at the last batch boundary, which is exactly what we flush.
        report.record("deadline_stop", cursor=cursor, mid_batch=True)
        stop_reason = "deadline"
        flush()
    except KeyboardInterrupt:
        report.record("interrupt", cursor=cursor)
        flush()
        raise
    return ResilientOutcome(aggregate, report, completed, stop_reason, cursor, resumed_from)


_EMPTY_CHECK_PAYLOAD: Dict[str, Any] = {
    "runs_checked": 0,
    "max_decision_time": 0,
    "histogram": [],
    "violations": [],
}


# ---------------------------------------------------------------- census runs
def census_spec(pc, k: int, symmetry: str, backend: str, extra: Optional[Dict] = None) -> Dict:
    """The stream-identity spec of a census run.

    The class stream is derived from the built complex, so the spec
    fingerprints the complex (vertex/facet counts, round count) alongside
    the survey knobs; ``extra`` lets the CLI add the build description
    (context and engine) for defence in depth.
    """
    spec = {
        "kind": "census",
        "schema_note": "cursor counts canonical vertex classes",
        "k": k,
        "symmetry": symmetry,
        "backend": backend,
        "time": pc.time,
        "vertices": pc.complex.vertex_count,
        "facets": len(pc.complex.facet_masks),
    }
    if extra:
        spec.update(extra)
    return spec


def resilient_census(
    pc,
    k: int,
    *,
    symmetry: str = "quotient",
    backend: Optional[str] = None,
    spec_extra: Optional[Dict[str, Any]] = None,
    batch_size: int = 64,
    store: Optional[CheckpointStore] = None,
    resume: bool = False,
    result_store: Optional["ResultStore"] = None,
    deadline_seconds: Optional[float] = None,
    max_rss_kb: Optional[int] = None,
    report: Optional[RunReport] = None,
) -> ResilientOutcome:
    """Checkpointed :func:`repro.topology.capacity_connectivity_census`.

    The class stream and the per-class fold are shared with the plain census
    (:func:`repro.topology.protocol_complex.census_classes`), so a completed
    outcome's census *row* is byte-identical to the uninterrupted survey's.
    ``homology_runs`` counts profiles computed in *this* process — a resumed
    run re-misses its connectivity cache, so that bookkeeping field (and
    only it) may exceed the uninterrupted run's.

    ``result_store`` adds the durable memo at three tiers: the whole census
    row (a completed survey's counters, keyed by the complex fingerprint
    and fold shape — a hit answers without even grouping the vertices), per
    census class (``(capacity, level)`` keyed by the class's canonical
    vertex, skipping even the star construction on a hit) and per
    connectivity profile (threaded into the
    :class:`repro.topology.ConnectivityCache`, shared across *every* survey
    that probes an isomorphic star).  Store hits do not count as
    ``homology_runs`` — like cache hits, they ran no homology.
    """
    from ..topology.connectivity import DEFAULT_HOMOLOGY_BACKEND
    from ..topology.protocol_complex import (
        CapacityCensus,
        census_classes,
        vertex_capacity,
    )

    if backend is None:
        backend = DEFAULT_HOMOLOGY_BACKEND
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    report = report if report is not None else RunReport()
    if store is not None and store.report is None:
        store.report = report
    governor = _BudgetGovernor(deadline_seconds, max_rss_kb, report)

    if result_store is not None and result_store.report is None:
        result_store.report = report
    class_spec_h = row_key = None
    if result_store is not None:
        from ..store import census_class_store_spec, census_row_key, spec_hash, vertex_key

        class_spec_h = spec_hash(census_class_store_spec(pc, k))
        row_key = census_row_key(symmetry)
        if result_store.available:
            # The coarsest memo tier: the whole census row.  A hit answers
            # the survey without even grouping the vertices into classes —
            # the warm-census fast path `bench_store.py` gates.  A damaged
            # row is quarantined by the read and the census falls through
            # to the per-class tier below (which heals it on completion).
            row_hit = result_store.get("census_row", class_spec_h, row_key)
            if row_hit is not None:
                census = CapacityCensus(
                    *row_hit["counters"], classes=row_hit["classes"], homology_runs=0
                )
                return ResilientOutcome(
                    census, report, True, None, row_hit["classes"], None
                )
    groups, profile, cache = census_classes(
        pc, k, symmetry=symmetry, backend=backend, result_store=result_store
    )
    spec = census_spec(pc, k, symmetry, backend, spec_extra)
    spec["classes"] = len(groups)
    cursor, payload, resumed_from = _resume_cursor(store, resume, spec, report)
    counters = list(payload["counters"]) if payload is not None else [0, 0, 0, 0, 0]
    homology_runs = payload["homology_runs"] if payload is not None else 0

    # Snapshot taken at batch boundaries only — a mid-batch interrupt must
    # not flush partially-updated counters against a boundary cursor.
    boundary_payload = {"counters": list(counters), "homology_runs": homology_runs}

    def flush() -> None:
        if result_store is not None:
            result_store.flush()
        if store is not None:
            store.save(Checkpoint(spec=spec, cursor=cursor, payload=boundary_payload))

    def outcome(completed: bool, stop_reason: Optional[str]) -> ResilientOutcome:
        census = CapacityCensus(*counters, classes=len(groups), homology_runs=homology_runs)
        return ResilientOutcome(census, report, completed, stop_reason, cursor, resumed_from)

    stop_reason = None
    misses_before = cache.misses if cache is not None else 0
    uncached = 0  # classes folded with no in-memory cache to count misses for
    try:
        while cursor < len(groups):
            batch = groups[cursor : cursor + batch_size]
            use_store = result_store is not None and result_store.available
            if use_store:
                keys = [vertex_key(representative) for representative, _weight in batch]
                found = result_store.get_many("census_class", class_spec_h, keys)
            else:
                keys, found = (), {}
            for position, (representative, weight) in enumerate(batch):
                hit = found.get(keys[position]) if use_store else None
                if hit is not None:
                    capacity, level = hit["capacity"], hit["level"]
                else:
                    capacity = vertex_capacity(representative)
                    level = profile(pc.complex.star(representative))
                    if cache is None:
                        uncached += 1
                    if use_store:
                        result_store.put(
                            "census_class",
                            class_spec_h,
                            keys[position],
                            {"capacity": capacity, "level": level},
                        )
                counters[0] += weight
                if capacity >= k:
                    counters[1] += weight
                    if level >= k - 1:
                        counters[2] += weight
                if level >= k - 1:
                    counters[3] += weight
                    if capacity >= k:
                        counters[4] += weight
            cursor += len(batch)
            if cache is not None:
                homology_runs += cache.misses - misses_before
                misses_before = cache.misses
            else:
                homology_runs += uncached
                uncached = 0
            boundary_payload = {"counters": list(counters), "homology_runs": homology_runs}
            flush()
            stop_reason = governor.stop_reason(cursor)
            if stop_reason is not None:
                return outcome(False, stop_reason)
    except KeyboardInterrupt:
        report.record("interrupt", cursor=cursor)
        flush()
        raise
    if result_store is not None and result_store.available:
        result_store.put(
            "census_row",
            class_spec_h,
            row_key,
            {"counters": list(counters), "classes": len(groups)},
        )
        result_store.flush()
    return outcome(True, None)
