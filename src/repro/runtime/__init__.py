"""Fault-tolerant survey runtime: checkpoint/resume, supervision, chaos testing.

The resilience layer wrapped around the sweep/fused engines:

* :mod:`repro.runtime.checkpoint` — atomic, checksummed, rotated
  checkpoints of deterministic survey streams (:class:`Checkpoint`,
  :class:`CheckpointStore`, :class:`CheckpointError`);
* :mod:`repro.runtime.supervisor` — the supervised worker pool the sharded
  engine passes run on when a :class:`SupervisionPolicy` is configured
  (per-chunk timeouts, bounded retry with exponential backoff, dead-worker
  detection and respawn, poison-chunk quarantine, serial degradation,
  deadline aborts);
* :mod:`repro.runtime.faults` — the deterministic fault-injection harness
  (:class:`FaultPlan`) that makes every recovery path testable in tier-1;
* :mod:`repro.runtime.runner` — the resilient consumers: checkpointed
  checker sweeps (:func:`resilient_check`) and Proposition 2 censuses
  (:func:`resilient_census`), with wall-clock/peak-RSS budgets that
  checkpoint-and-stop instead of dying;
* :mod:`repro.runtime.report` — the structured :class:`RunReport` every
  recovery action is surfaced on.

See ``docs/robustness.md`` for the checkpoint format, the supervision state
machine, and the fault-injection knobs.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    canonical_json,
    load_checkpoint,
    write_checkpoint,
)
from .faults import FAULTS_ENV, FaultPlan, InjectedFault
from .report import EVENT_KINDS, RunReport, RuntimeEvent
from .runner import (
    DEFAULT_BATCH_SIZE,
    ResilientOutcome,
    checker_spec,
    census_spec,
    peak_rss_kb,
    resilient_census,
    resilient_check,
)
from .supervisor import (
    DeadlineExceeded,
    SupervisionError,
    SupervisionPolicy,
    run_supervised,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "DEFAULT_BATCH_SIZE",
    "DeadlineExceeded",
    "EVENT_KINDS",
    "FAULTS_ENV",
    "FaultPlan",
    "InjectedFault",
    "ResilientOutcome",
    "RunReport",
    "RuntimeEvent",
    "SupervisionError",
    "SupervisionPolicy",
    "canonical_json",
    "census_spec",
    "checker_spec",
    "load_checkpoint",
    "peak_rss_kb",
    "resilient_census",
    "resilient_check",
    "run_supervised",
    "write_checkpoint",
]
