"""Domination, strict domination and last-decider domination of protocols.

Definitions 1 and 6 of the paper, evaluated over finite adversary families:

* ``Q`` **dominates** ``P`` in a context if, for every adversary and every
  process, whenever the process decides at time ``m`` under ``P`` it decides
  at some time ``<= m`` under ``Q``;
* ``Q`` **strictly dominates** ``P`` if it dominates ``P`` and beats it on at
  least one (adversary, process) pair;
* a protocol is **unbeatable** if no protocol solving the problem strictly
  dominates it;
* the **last-decider** variants compare only the time of the last decision in
  each run.

Unbeatability quantifies over *all* protocols and therefore cannot be
established empirically; what this module provides is (i) the domination
comparisons between concrete protocols that the paper's claims reduce to
("u-Pmin strictly dominates all known protocols", "Opt0 beats early-stopping
consensus by up to t-2 rounds"), and (ii) the per-adversary decision-time data
that the DOM benchmark reports.  The complementary falsification-style
evidence for unbeatability lives in :mod:`repro.verification.beatability`.

Every comparison here is a family sweep, so all entry points take
``engine="batch" | "reference"``: the default routes the family through
:class:`repro.engine.SweepRunner` (decision times only, which is all
domination consumes), ``"reference"`` streams one oracle ``Run`` per
adversary.  The dispatch itself is owned by
:func:`repro.engine.runs_over_family`.

``symmetry="quotient"`` additionally quotients the family by process
renaming (:func:`repro.symmetry.quotient_family`) and compares only orbit
representatives.  Because both protocols are symmetric, a per-process
comparison on a renamed adversary is the renamed comparison — so the
domination verdict, ``adversaries_checked`` and ``rounds_saved`` are
orbit-weighted back to exact full-family figures, while the
``counterexamples`` / ``improvements`` lists carry one exemplar entry per
orbit (indexed by the representative's position in the input family).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..model.adversary import Adversary
from ..model.run import Run
from ..model.types import ProcessId, Time


@dataclass(frozen=True)
class DecisionProfile:
    """Decision times of one protocol on one adversary.

    ``times[p]`` is the decision time of process ``p`` or ``None`` if it never
    decides (processes that crash before deciding are recorded as ``None`` as
    well — domination only compares processes that decide under the dominated
    protocol, matching Definition 1).
    """

    protocol_name: str
    times: Tuple[Optional[Time], ...]
    last_correct_decision: Optional[Time]

    @staticmethod
    def from_run(run: Run) -> "DecisionProfile":
        times = tuple(run.decision_time(p) for p in range(run.n))
        return DecisionProfile(
            protocol_name=getattr(run.protocol, "name", "protocol"),
            times=times,
            last_correct_decision=run.last_decision_time(correct_only=True),
        )


@dataclass
class DominationReport:
    """The result of comparing candidate ``Q`` against reference ``P`` over adversaries.

    ``Q`` dominates ``P`` on the family iff ``counterexamples`` is empty;
    it strictly dominates iff additionally ``improvements`` is non-empty.
    """

    candidate: str
    reference: str
    adversaries_checked: int = 0
    #: (adversary index, process, time under Q, time under P) where Q was later.
    counterexamples: List[Tuple[int, ProcessId, Optional[Time], Time]] = field(default_factory=list)
    #: (adversary index, process, time under Q, time under P) where Q was strictly earlier.
    improvements: List[Tuple[int, ProcessId, Time, Time]] = field(default_factory=list)
    #: Total rounds saved by Q over all improving (adversary, process) pairs.
    rounds_saved: int = 0

    @property
    def dominates(self) -> bool:
        """Whether the candidate dominated the reference on every checked pair."""
        return not self.counterexamples

    @property
    def strictly_dominates(self) -> bool:
        """Whether the candidate dominated and improved on at least one pair."""
        return self.dominates and bool(self.improvements)

    def summary(self) -> str:
        """One-line human-readable summary."""
        verdict = (
            "strictly dominates"
            if self.strictly_dominates
            else "dominates" if self.dominates else "does NOT dominate"
        )
        return (
            f"{self.candidate} {verdict} {self.reference} over {self.adversaries_checked} adversaries "
            f"({len(self.improvements)} improvements, {len(self.counterexamples)} counterexamples, "
            f"{self.rounds_saved} rounds saved)"
        )


def compare_on_adversary(
    candidate_run: Run,
    reference_run: Run,
    adversary_index: int,
    report: DominationReport,
    weight: int = 1,
) -> None:
    """Fold one adversary's decision times into a :class:`DominationReport`.

    ``weight`` is the orbit size of a quotient comparison's representative:
    the aggregate counters scale by it (every orbit member reproduces the
    same per-process comparison up to renaming) while the exemplar lists gain
    one entry regardless.
    """
    report.adversaries_checked += weight
    for process in range(reference_run.n):
        reference_time = reference_run.decision_time(process)
        if reference_time is None:
            # Definition 1 only constrains processes that decide under the
            # reference protocol.
            continue
        candidate_time = candidate_run.decision_time(process)
        if candidate_time is None or candidate_time > reference_time:
            report.counterexamples.append(
                (adversary_index, process, candidate_time, reference_time)
            )
        elif candidate_time < reference_time:
            report.improvements.append(
                (adversary_index, process, candidate_time, reference_time)
            )
            report.rounds_saved += weight * (reference_time - candidate_time)


def compare_protocols(
    candidate,
    reference,
    adversaries: Iterable[Adversary],
    t: int,
    engine: str = "batch",
    processes: Optional[int] = None,
    symmetry: str = "none",
) -> DominationReport:
    """Compare two protocols' decision times over a family of adversaries.

    Both protocols are executed against exactly the same adversaries (the
    definition of domination compares performance on the same behaviours of
    the adversary).  ``symmetry="quotient"`` compares one representative per
    renaming orbit and orbit-weights the aggregate counters (see the module
    docstring).
    """
    report = DominationReport(
        candidate=getattr(candidate, "name", "candidate"),
        reference=getattr(reference, "name", "reference"),
    )
    for index, weight, candidate_run, reference_run in _weighted_run_pairs(
        candidate, reference, adversaries, t, engine, processes, symmetry
    ):
        compare_on_adversary(candidate_run, reference_run, index, report, weight=weight)
    return report


def _run_pairs(candidate, reference, adversaries, t, engine, processes):
    """Paired runs of both protocols per adversary, in input order.

    The reference path streams — both runs of one adversary are built and
    dropped together, O(1) memory on generated families, exactly like the
    pre-engine-dispatch loop — while the batch path materialises the family
    once (it is consumed by two sweeps) and zips the results.
    """
    from ..engine import runs_over_family, validate_engine_choice

    validate_engine_choice(engine, processes)
    if engine == "reference":
        return ((Run(candidate, a, t), Run(reference, a, t)) for a in adversaries)
    adversaries = list(adversaries)
    return zip(
        runs_over_family(candidate, adversaries, t, engine, processes),
        runs_over_family(reference, adversaries, t, engine, processes),
    )


def _weighted_run_pairs(candidate, reference, adversaries, t, engine, processes, symmetry):
    """``(index, weight, candidate run, reference run)`` per compared adversary.

    The symmetry dispatch shared by :func:`compare_protocols` and
    :func:`last_decider_compare`: exhaustive comparisons stream every family
    member with weight 1; quotient comparisons stream one representative per
    renaming orbit, weighted by its member count and indexed by its original
    family position; constructive comparisons stream one *generated*
    representative per orbit of a :class:`repro.adversaries.RestrictedSpace`
    (orbit-size weights, generation-order indices).
    """
    from ..symmetry import validate_symmetry_choice

    validate_symmetry_choice(symmetry)
    if symmetry in ("quotient", "constructive"):
        if symmetry == "constructive":
            from ..adversaries.enumeration import constructive_quotient

            representatives, weights, first_indices = constructive_quotient(adversaries)
        else:
            from ..symmetry import quotient_family

            representatives, weights, first_indices = quotient_family(adversaries)
        pairs = _run_pairs(candidate, reference, representatives, t, engine, processes)
        return (
            (index, weight, candidate_run, reference_run)
            for (index, weight, (candidate_run, reference_run)) in zip(
                first_indices, weights, pairs
            )
        )
    pairs = _run_pairs(candidate, reference, adversaries, t, engine, processes)
    return (
        (index, 1, candidate_run, reference_run)
        for index, (candidate_run, reference_run) in enumerate(pairs)
    )


def last_decider_compare(
    candidate,
    reference,
    adversaries: Iterable[Adversary],
    t: int,
    engine: str = "batch",
    processes: Optional[int] = None,
    symmetry: str = "none",
) -> DominationReport:
    """Definition 6: compare only the time of the last (correct) decision per run."""
    report = DominationReport(
        candidate=f"{getattr(candidate, 'name', 'candidate')} [last-decider]",
        reference=f"{getattr(reference, 'name', 'reference')} [last-decider]",
    )
    for index, weight, candidate_run, reference_run in _weighted_run_pairs(
        candidate, reference, adversaries, t, engine, processes, symmetry
    ):
        report.adversaries_checked += weight
        reference_last = reference_run.last_decision_time(correct_only=True)
        candidate_last = candidate_run.last_decision_time(correct_only=True)
        if reference_last is None:
            continue
        if candidate_last is None or candidate_last > reference_last:
            report.counterexamples.append((index, -1, candidate_last, reference_last))
        elif candidate_last < reference_last:
            report.improvements.append((index, -1, candidate_last, reference_last))
            report.rounds_saved += weight * (reference_last - candidate_last)
    return report


def decision_time_table(
    protocols: Sequence,
    adversaries: Sequence[Adversary],
    t: int,
    engine: str = "batch",
    processes: Optional[int] = None,
) -> Dict[str, List[Optional[Time]]]:
    """Last-correct-decision times of several protocols on each adversary.

    Returns a mapping ``protocol name -> [time per adversary]``; the DOM
    benchmark prints this as the paper-style comparison table.
    """
    from ..engine import runs_over_family

    table: Dict[str, List[Optional[Time]]] = {}
    for protocol in protocols:
        runs = runs_over_family(protocol, adversaries, t, engine, processes)
        table[getattr(protocol, "name", repr(protocol))] = [
            run.last_decision_time(correct_only=True) for run in runs
        ]
    return table
