"""Correctness properties of (uniform and nonuniform) k-set consensus runs.

The problem specification (paper, Section 2.3):

* **k-Agreement** — the set of values that *correct* processes decide on has
  cardinality at most ``k``;
* **Uniform k-Agreement** — the set of *all* decided values (including those
  decided by processes that later crash) has cardinality at most ``k``;
* **Decision** — every correct process decides;
* **Validity** — a value may be decided only if some process started with it.

This module checks these properties — plus the decision-time bounds of
Proposition 1 and Theorem 3 — on concrete :class:`repro.model.run.Run`
objects, reporting violations as structured :class:`Violation` records rather
than booleans, so that failing checks are immediately diagnosable in tests and
benchmark logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..model.run import Run
from ..model.types import ProcessId, Value


@dataclass(frozen=True)
class Violation:
    """A single property violation found in a run.

    Attributes
    ----------
    property_name:
        Which property was violated (``"validity"``, ``"decision"``, ...).
    message:
        A human-readable description of what went wrong.
    process:
        The offending process, when a single process can be blamed.
    """

    property_name: str
    message: str
    process: Optional[ProcessId] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" (process {self.process})" if self.process is not None else ""
        return f"[{self.property_name}] {self.message}{suffix}"


def check_validity(run: Run) -> List[Violation]:
    """Validity: every decided value was some process's initial value."""
    violations = []
    initial_values = run.adversary.value_set()
    for decision in run.decisions():
        if decision.value not in initial_values:
            violations.append(
                Violation(
                    "validity",
                    f"value {decision.value} decided at time {decision.time} was nobody's input "
                    f"(inputs: {sorted(initial_values)})",
                    decision.process,
                )
            )
    return violations


def check_decision(run: Run) -> List[Violation]:
    """Decision: every correct process decides (within the simulated horizon)."""
    violations = []
    for process in sorted(run.correct_processes()):
        if run.decision(process) is None:
            violations.append(
                Violation(
                    "decision",
                    f"correct process {process} never decided within horizon {run.horizon}",
                    process,
                )
            )
    return violations


def check_agreement(run: Run, k: int) -> List[Violation]:
    """(Nonuniform) k-Agreement: correct processes decide on at most ``k`` values."""
    decided = run.decided_values(correct_only=True)
    if len(decided) > k:
        return [
            Violation(
                "k-agreement",
                f"correct processes decided {len(decided)} distinct values {sorted(decided)} > k={k}",
            )
        ]
    return []


def check_uniform_agreement(run: Run, k: int) -> List[Violation]:
    """Uniform k-Agreement: all decided values (faulty deciders included) number at most ``k``."""
    decided = run.decided_values(correct_only=False)
    if len(decided) > k:
        return [
            Violation(
                "uniform-k-agreement",
                f"all processes together decided {len(decided)} distinct values {sorted(decided)} > k={k}",
            )
        ]
    return []


def check_decision_times(run: Run, bound: int, correct_only: bool = True) -> List[Violation]:
    """Check every (correct) process decided no later than ``bound``."""
    violations = []
    pattern = run.adversary.pattern
    for decision in run.decisions():
        if correct_only and pattern.is_faulty(decision.process):
            continue
        if decision.time > bound:
            violations.append(
                Violation(
                    "decision-time",
                    f"process {decision.process} decided at time {decision.time}, "
                    f"exceeding the bound {bound}",
                    decision.process,
                )
            )
    return violations


def check_nonuniform_run(run: Run, k: int, time_bound: Optional[int] = None) -> List[Violation]:
    """All nonuniform k-set consensus properties on one run (plus optional time bound)."""
    violations = []
    violations += check_validity(run)
    violations += check_decision(run)
    violations += check_agreement(run, k)
    if time_bound is not None:
        violations += check_decision_times(run, time_bound)
    return violations


def check_uniform_run(run: Run, k: int, time_bound: Optional[int] = None) -> List[Violation]:
    """All uniform k-set consensus properties on one run (plus optional time bound)."""
    violations = []
    violations += check_validity(run)
    violations += check_decision(run)
    violations += check_uniform_agreement(run, k)
    if time_bound is not None:
        violations += check_decision_times(run, time_bound, correct_only=False)
    return violations


def proposition1_bound(k: int, f: int) -> int:
    """Proposition 1: Optmin[k] decision-time bound ``⌊f/k⌋ + 1``."""
    return f // k + 1


def theorem3_bound(k: int, t: int, f: int) -> int:
    """Theorem 3: u-Pmin[k] decision-time bound ``min(⌊t/k⌋ + 1, ⌊f/k⌋ + 2)``."""
    return min(t // k + 1, f // k + 2)


def check_run_for_protocol(run: Run, enforce_paper_bound: bool = True) -> List[Violation]:
    """Check a run against the specification appropriate for its protocol.

    Uniform protocols are checked for Uniform k-Agreement, nonuniform ones
    for plain k-Agreement.  When ``enforce_paper_bound`` is set and the
    protocol declares an early-deciding bound via ``decision_bound`` (as
    Optmin[k], u-Pmin[k] and the early-deciding baselines do), that bound —
    which depends on the run's actual failure count ``f`` — is enforced;
    otherwise the protocol's worst-case ``max_decision_time`` is used.
    """
    protocol = run.protocol
    if protocol is None:
        raise ValueError("the run was executed without a protocol; nothing to check")
    k = protocol.k
    f = run.adversary.num_failures
    if enforce_paper_bound and hasattr(protocol, "decision_bound"):
        try:
            bound = protocol.decision_bound(f)
        except TypeError:
            bound = protocol.decision_bound(run.t, f)
    else:
        bound = protocol.max_decision_time(run.n, run.t)
    if protocol.uniform:
        return check_uniform_run(run, k, bound)
    return check_nonuniform_run(run, k, bound)
