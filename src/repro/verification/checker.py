"""Bulk correctness checking over adversary families (exhaustive or sampled).

The paper's theorems are of the form "for every adversary, ...".  This module
discharges those quantifiers over finite families: it runs a protocol against
every adversary of an enumerated or sampled family, applies the property
checks of :mod:`repro.verification.properties`, and aggregates the outcome
into a :class:`CheckReport` that the exhaustive tests and the PROP1/THM3
benchmarks consume.

Two execution engines are available (``engine=`` on every entry point):

* ``"batch"`` (default) — the prefix-sharing batch engine of
  :mod:`repro.engine`, which amortises simulation work across the family and
  is the throughput path for exhaustive sweeps;
* ``"reference"`` — one :class:`repro.model.run.Run` per adversary; the
  semantic oracle the batch engine is differentially tested against.

Orthogonally, ``symmetry="quotient"`` quotients the family by process
renaming before the sweep (:func:`repro.symmetry.quotient_family`): one
representative per orbit is simulated and checked, and its outcome is folded
into the report with the orbit size as weight.  Every recorded quantity —
violation existence, the decision-time histogram, the maximum decision time —
is constant on renaming orbits (decision times transport along the renaming,
decision values are untouched), so the quotient report reproduces the
exhaustive census exactly; ``tests/test_quotient_differential.py`` pins the
identity.  Violations are reported once per orbit (the representative is the
concrete counterexample; the rest of the orbit is its renamings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..model.adversary import Adversary, Context
from ..model.run import Run
from .properties import Violation, check_run_for_protocol


@dataclass
class CheckReport:
    """Aggregated result of checking one protocol over many adversaries."""

    protocol: str
    runs_checked: int = 0
    violations: List[Tuple[int, Violation]] = field(default_factory=list)
    #: Histogram of last-correct-decision times over the family.
    decision_time_histogram: Dict[int, int] = field(default_factory=dict)
    #: The largest observed (last correct) decision time and the paper bound it
    #: was checked against, per run maximum.
    max_decision_time: int = 0

    @property
    def ok(self) -> bool:
        """Whether no violation was found."""
        return not self.violations

    def record(self, index: int, run, run_violations: List[Violation], weight: int = 1) -> None:
        """Fold one run's outcome into the report.

        ``run`` may be a reference :class:`repro.model.run.Run` or a batch
        :class:`repro.engine.BatchRun`; only the shared read API is used.
        ``weight`` is the orbit size of a quotient sweep's representative
        (the number of family members sharing this outcome); violations stay
        one entry per representative.
        """
        self.runs_checked += weight
        for violation in run_violations:
            self.violations.append((index, violation))
        last = run.last_decision_time(correct_only=True)
        if last is not None:
            self.decision_time_histogram[last] = (
                self.decision_time_histogram.get(last, 0) + weight
            )
            self.max_decision_time = max(self.max_decision_time, last)

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        histogram = ", ".join(
            f"t={time}: {count}" for time, count in sorted(self.decision_time_histogram.items())
        )
        return (
            f"{self.protocol}: {status} over {self.runs_checked} runs "
            f"(decision-time histogram: {histogram or 'n/a'})"
        )


def check_protocol(
    protocol,
    adversaries: Iterable[Adversary],
    t: int,
    enforce_paper_bound: bool = True,
    engine: str = "batch",
    processes: Optional[int] = None,
    symmetry: str = "none",
) -> CheckReport:
    """Run ``protocol`` against every adversary and check its specification.

    ``symmetry="quotient"`` checks one representative per process-renaming
    orbit and weights its outcome by the orbit's member count; the report's
    census fields equal the exhaustive ones (see the module docstring).
    ``symmetry="constructive"`` does the same but *generates* the
    representatives from a space description instead of deduplicating the
    family — ``adversaries`` must then be a
    :class:`repro.adversaries.RestrictedSpace` (or a pre-built
    :func:`repro.adversaries.enumerate_orbits` stream), which is what makes
    spaces too large to enumerate checkable.
    """
    from ..engine import SweepRunner, validate_engine_choice
    from ..symmetry import validate_symmetry_choice

    validate_engine_choice(engine, processes)
    validate_symmetry_choice(symmetry)
    if symmetry == "constructive":
        from ..adversaries.enumeration import constructive_quotient

        return _check_quotiented(
            protocol,
            constructive_quotient(adversaries),
            t,
            enforce_paper_bound,
            engine,
            processes,
        )
    if symmetry == "quotient":
        from ..symmetry import quotient_family

        return _check_quotiented(
            protocol, quotient_family(adversaries), t, enforce_paper_bound, engine, processes
        )
    if engine == "reference":
        report = CheckReport(protocol=getattr(protocol, "name", "protocol"))
        for index, adversary in enumerate(adversaries):
            run = Run(protocol, adversary, t)
            report.record(index, run, check_run_for_protocol(run, enforce_paper_bound))
        return report
    runner = SweepRunner(protocol, t, processes=processes)
    return runner.check(adversaries, enforce_paper_bound)


def _check_quotiented(
    protocol,
    quotiented: Tuple[List[Adversary], List[int], List[int]],
    t: int,
    enforce_paper_bound: bool,
    engine: str,
    processes: Optional[int],
) -> CheckReport:
    """Fold one protocol's runs over pre-quotiented representatives.

    Split out of :func:`check_protocol` so :func:`check_protocols` can
    canonicalise the family once and reuse the quotient across protocols —
    the canonical-form pass dominates the quotient sweep's cost on large
    spaces, and it is protocol-independent.
    """
    from ..engine import runs_over_family

    representatives, weights, first_indices = quotiented
    report = CheckReport(protocol=getattr(protocol, "name", "protocol"))
    runs = runs_over_family(protocol, representatives, t, engine, processes)
    for run, weight, index in zip(runs, weights, first_indices):
        report.record(
            index, run, check_run_for_protocol(run, enforce_paper_bound), weight=weight
        )
    return report


def check_protocols(
    protocols: Iterable,
    adversaries: List[Adversary],
    t: int,
    enforce_paper_bound: bool = True,
    engine: str = "batch",
    processes: Optional[int] = None,
    symmetry: str = "none",
) -> Dict[str, CheckReport]:
    """Check several protocols over the same adversary family.

    The quotient is computed once and shared across protocols (orbits do not
    depend on the protocol under check); the constructive orbit stream is
    likewise drained once.
    """
    if symmetry in ("quotient", "constructive"):
        from ..engine import validate_engine_choice
        from ..symmetry import validate_symmetry_choice

        validate_engine_choice(engine, processes)
        validate_symmetry_choice(symmetry)
        if symmetry == "constructive":
            from ..adversaries.enumeration import constructive_quotient

            quotiented = constructive_quotient(adversaries)
        else:
            from ..symmetry import quotient_family

            quotiented = quotient_family(adversaries)
        return {
            getattr(protocol, "name", repr(protocol)): _check_quotiented(
                protocol, quotiented, t, enforce_paper_bound, engine, processes
            )
            for protocol in protocols
        }
    return {
        getattr(protocol, "name", repr(protocol)): check_protocol(
            protocol,
            adversaries,
            t,
            enforce_paper_bound,
            engine=engine,
            processes=processes,
            symmetry=symmetry,
        )
        for protocol in protocols
    }


def exhaustive_context_check(
    protocol,
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
    limit: Optional[int] = None,
    engine: str = "batch",
    processes: Optional[int] = None,
    symmetry: str = "none",
) -> CheckReport:
    """Check a protocol over the (restricted) exhaustive adversary space of a context.

    With ``symmetry="quotient"`` the enumerated space is quotiented by
    process renaming before the sweep; the restricted spaces are closed under
    renaming for every restriction flag, so the report still accounts for the
    full space (``runs_checked`` and the histogram are orbit-weighted).
    ``symmetry="constructive"`` skips the enumeration entirely and generates
    one representative per orbit from the restriction flags themselves
    (``limit`` then caps *orbits* rather than adversaries).
    """
    from ..adversaries.enumeration import RestrictedSpace

    space = RestrictedSpace(
        context,
        max_crash_round=max_crash_round,
        receiver_policy=receiver_policy,
        max_failures=max_failures,
        limit=limit,
    )
    return check_protocol(
        protocol, space, context.t, engine=engine, processes=processes, symmetry=symmetry
    )
