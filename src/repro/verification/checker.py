"""Bulk correctness checking over adversary families (exhaustive or sampled).

The paper's theorems are of the form "for every adversary, ...".  This module
discharges those quantifiers over finite families: it runs a protocol against
every adversary of an enumerated or sampled family, applies the property
checks of :mod:`repro.verification.properties`, and aggregates the outcome
into a :class:`CheckReport` that the exhaustive tests and the PROP1/THM3
benchmarks consume.

Two execution engines are available (``engine=`` on every entry point):

* ``"batch"`` (default) — the prefix-sharing batch engine of
  :mod:`repro.engine`, which amortises simulation work across the family and
  is the throughput path for exhaustive sweeps;
* ``"reference"`` — one :class:`repro.model.run.Run` per adversary; the
  semantic oracle the batch engine is differentially tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..model.adversary import Adversary, Context
from ..model.run import Run
from .properties import Violation, check_run_for_protocol


@dataclass
class CheckReport:
    """Aggregated result of checking one protocol over many adversaries."""

    protocol: str
    runs_checked: int = 0
    violations: List[Tuple[int, Violation]] = field(default_factory=list)
    #: Histogram of last-correct-decision times over the family.
    decision_time_histogram: Dict[int, int] = field(default_factory=dict)
    #: The largest observed (last correct) decision time and the paper bound it
    #: was checked against, per run maximum.
    max_decision_time: int = 0

    @property
    def ok(self) -> bool:
        """Whether no violation was found."""
        return not self.violations

    def record(self, index: int, run, run_violations: List[Violation]) -> None:
        """Fold one run's outcome into the report.

        ``run`` may be a reference :class:`repro.model.run.Run` or a batch
        :class:`repro.engine.BatchRun`; only the shared read API is used.
        """
        self.runs_checked += 1
        for violation in run_violations:
            self.violations.append((index, violation))
        last = run.last_decision_time(correct_only=True)
        if last is not None:
            self.decision_time_histogram[last] = self.decision_time_histogram.get(last, 0) + 1
            self.max_decision_time = max(self.max_decision_time, last)

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        histogram = ", ".join(
            f"t={time}: {count}" for time, count in sorted(self.decision_time_histogram.items())
        )
        return (
            f"{self.protocol}: {status} over {self.runs_checked} runs "
            f"(decision-time histogram: {histogram or 'n/a'})"
        )


def check_protocol(
    protocol,
    adversaries: Iterable[Adversary],
    t: int,
    enforce_paper_bound: bool = True,
    engine: str = "batch",
    processes: Optional[int] = None,
) -> CheckReport:
    """Run ``protocol`` against every adversary and check its specification."""
    from ..engine import SweepRunner, validate_engine_choice

    validate_engine_choice(engine, processes)
    if engine == "reference":
        report = CheckReport(protocol=getattr(protocol, "name", "protocol"))
        for index, adversary in enumerate(adversaries):
            run = Run(protocol, adversary, t)
            report.record(index, run, check_run_for_protocol(run, enforce_paper_bound))
        return report
    runner = SweepRunner(protocol, t, processes=processes)
    return runner.check(adversaries, enforce_paper_bound)


def check_protocols(
    protocols: Iterable,
    adversaries: List[Adversary],
    t: int,
    enforce_paper_bound: bool = True,
    engine: str = "batch",
    processes: Optional[int] = None,
) -> Dict[str, CheckReport]:
    """Check several protocols over the same adversary family."""
    return {
        getattr(protocol, "name", repr(protocol)): check_protocol(
            protocol, adversaries, t, enforce_paper_bound, engine=engine, processes=processes
        )
        for protocol in protocols
    }


def exhaustive_context_check(
    protocol,
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
    limit: Optional[int] = None,
    engine: str = "batch",
    processes: Optional[int] = None,
) -> CheckReport:
    """Check a protocol over the (restricted) exhaustive adversary space of a context."""
    from ..adversaries.enumeration import enumerate_adversaries

    adversaries = enumerate_adversaries(
        context,
        max_crash_round=max_crash_round,
        receiver_policy=receiver_policy,
        max_failures=max_failures,
        limit=limit,
    )
    return check_protocol(protocol, adversaries, context.t, engine=engine, processes=processes)
