"""Falsification-style evidence for the unbeatability of Optmin[k].

Unbeatability (Theorem 1) quantifies over all protocols and is established in
the paper by proof (combinatorial and topological).  A library cannot verify a
statement about all protocols by testing, but it can reproduce the *mechanism*
of the proof:

1. Lemma 1 / Lemma 3 show that a high process whose hidden capacity is at
   least ``k`` cannot decide without risking a violation of k-Agreement,
   because the hidden-capacity witnesses can (Lemma 2) be carrying all ``k``
   low values, and under any protocol that dominates Optmin[k] the carriers
   must have decided on them.

2. Consequently, any protocol that tries to *beat* Optmin[k] by making such a
   process decide earlier can be confronted with a concrete adversary on
   which it decides ``k + 1`` distinct values.

This module implements exactly that confrontation:

* :class:`EagerOptMin` — Optmin[k] modified to decide at a chosen time even
  when high with hidden capacity ``>= k`` (the canonical "beating attempt");
* :func:`beating_attempt_witness` — the Fig. 2-style adversary family on
  which every such attempt violates k-Agreement while Optmin[k] itself stays
  correct;
* :func:`find_agreement_violation` — a search utility that scans an adversary
  family for a k-Agreement violation of an arbitrary protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..adversaries.scenarios import figure2_scenario
from ..core.optmin import OptMin
from ..model.adversary import Adversary, Context
from ..model.run import Run, RoundContext
from ..model.types import Time, Value
from .properties import check_agreement, check_uniform_agreement


class EagerOptMin(OptMin):
    """Optmin[k] plus an eager clause: decide at ``eager_time`` no matter what.

    This is the generic shape of an attempt to beat Optmin[k]: take its
    decision rule and additionally force a decision (on the process's current
    minimum) at some earlier point even though the process is high and its
    hidden capacity is still ``>= k``.  Lemma 3 says any such protocol must
    fail k-Agreement on some adversary; :func:`beating_attempt_witness`
    produces one.
    """

    name = "EagerOptmin[k]"

    def __init__(self, k: int, eager_time: Time) -> None:
        super().__init__(k)
        if eager_time < 0:
            raise ValueError("eager_time must be >= 0")
        self.eager_time = eager_time

    def decide(self, ctx: RoundContext) -> Optional[Value]:
        decision = super().decide(ctx)
        if decision is not None:
            return decision
        if ctx.time == self.eager_time:
            # The beating attempt: decide despite being high with HC >= k.
            return ctx.view.min_value()
        return None


@dataclass(frozen=True)
class BeatabilityWitness:
    """An adversary on which an eager variant of Optmin[k] violates k-Agreement.

    Attributes
    ----------
    adversary:
        The witnessing adversary (a Fig. 2 hidden-chain family member whose
        chains carry all ``k`` low values).
    context:
        The context it lives in.
    eager_time:
        The time at which the eager variant decides prematurely.
    observer:
        The high process whose premature decision causes the violation.
    """

    adversary: Adversary
    context: Context
    eager_time: Time
    observer: int


def beating_attempt_witness(k: int, depth: int = 2, extra_processes: int = 1) -> BeatabilityWitness:
    """Build the Fig. 2-based adversary on which deciding early is fatal.

    The adversary consists of ``k`` disjoint hidden chains of length
    ``depth`` whose heads carry the low values ``0 .. k-1`` while the observer
    and all other processes hold the high value ``k``.  Under Optmin[k]:

    * each chain's surviving tail becomes low at time ``depth`` and decides
      its unique low value — all ``k`` low values get decided by correct
      processes;
    * the observer stays high with hidden capacity ``k`` through time
      ``depth`` and therefore stays undecided; it decides only at
      ``depth + 1`` once the tails' values reach it.

    Any protocol that makes the observer decide at time ``depth`` (while the
    chains are still hidden) therefore decides ``k + 1`` distinct values among
    correct processes.  This is exactly the situation of Lemma 3.
    """
    scenario = figure2_scenario(k=k, depth=depth, extra_processes=extra_processes)
    values = list(scenario.adversary.values)
    for b in range(k):
        chain = scenario.roles[f"chain{b}"]
        values[chain[0]] = b
    adversary = scenario.adversary.with_values(values)
    context = Context(
        n=scenario.context.n,
        t=scenario.context.t,
        k=k,
        max_value=max(scenario.context.max_value, k),
    )
    context.validate(adversary)
    return BeatabilityWitness(
        adversary=adversary,
        context=context,
        eager_time=depth,
        observer=scenario.observer,
    )


#: Adversaries swept per chunk by :func:`find_agreement_violation`'s batch
#: path — large enough for healthy prefix sharing inside a chunk, small
#: enough that the scan still stops shortly after the first violation.
_VIOLATION_SCAN_CHUNK = 1024


def find_agreement_violation(
    protocol,
    adversaries: Iterable[Adversary],
    t: int,
    uniform: bool = False,
    engine: str = "batch",
    processes: Optional[int] = None,
    symmetry: str = "none",
) -> Optional[Tuple[int, Adversary]]:
    """Scan an adversary family for a (uniform) k-Agreement violation of ``protocol``.

    Returns the index and adversary of the first violation found, or ``None``
    if the protocol survived the whole family.  ``engine="batch"`` (default)
    sweeps the (possibly streaming) family through
    :class:`repro.engine.SweepRunner` in bounded chunks, so the scan keeps
    the trie's sharing *and* the early exit; ``"reference"`` runs one oracle
    ``Run`` per adversary.

    ``symmetry="quotient"`` deduplicates the stream to one first-seen member
    per process-renaming orbit before scanning
    (:func:`repro.symmetry.iter_orbit_representatives`, lazily — the early
    exit is preserved).  A violation is constant on orbits, so the scan
    verdict (found vs not found) is identical to the exhaustive one; the
    returned index is the representative's position in the *original* stream
    and the returned adversary is a true family member.

    ``symmetry="constructive"`` scans one *generated* representative per
    orbit — ``adversaries`` must be a
    :class:`repro.adversaries.RestrictedSpace` (or an
    :func:`repro.adversaries.enumerate_orbits` stream); the early exit is
    preserved and the returned index numbers orbits in generation order.
    """
    import itertools

    from ..engine import SweepRunner, validate_engine_choice
    from ..symmetry import validate_symmetry_choice

    validate_engine_choice(engine, processes)
    validate_symmetry_choice(symmetry)
    check = check_uniform_agreement if uniform else check_agreement
    if symmetry == "constructive":
        from ..adversaries.enumeration import constructive_orbit_stream

        indexed: Iterable[Tuple[int, Adversary]] = (
            (index, orbit.representative)
            for index, orbit in enumerate(constructive_orbit_stream(adversaries))
        )
    elif symmetry == "quotient":
        from ..symmetry import iter_orbit_representatives

        indexed = iter_orbit_representatives(adversaries)
    else:
        indexed = enumerate(adversaries)
    if engine == "reference":
        for index, adversary in indexed:
            run = Run(protocol, adversary, t)
            if check(run, protocol.k):
                return index, adversary
        return None
    runner = SweepRunner(protocol, t, processes=processes)
    stream = iter(indexed)
    while True:
        chunk = list(itertools.islice(stream, _VIOLATION_SCAN_CHUNK))
        if not chunk:
            return None
        for (index, _adversary), run in zip(chunk, runner.sweep([a for _, a in chunk])):
            if check(run, protocol.k):
                return index, run.adversary



def demonstrate_unbeatability_mechanism(k: int, depth: int = 2, engine: str = "batch") -> dict:
    """Run the whole Lemma 3 confrontation and return a structured summary.

    Executes Optmin[k] and its eager variant on the witness adversary and
    reports the decided value sets and decision times of both, so tests and
    the FIG3 benchmark can assert that (i) Optmin[k] is correct and (ii) the
    eager variant violates k-Agreement on the very same adversary.  The
    property checks consume only the shared run read API, so either engine
    drives the confrontation.
    """
    from ..engine import run_one

    witness = beating_attempt_witness(k, depth)
    t = witness.context.t
    baseline_run = run_one(OptMin(k), witness.adversary, t, engine)
    eager_run = run_one(EagerOptMin(k, witness.eager_time), witness.adversary, t, engine)
    return {
        "witness": witness,
        "optmin_decided_values": sorted(baseline_run.decided_values(correct_only=True)),
        "optmin_observer_time": baseline_run.decision_time(witness.observer),
        "eager_decided_values": sorted(eager_run.decided_values(correct_only=True)),
        "eager_observer_time": eager_run.decision_time(witness.observer),
        "optmin_violations": check_agreement(baseline_run, k),
        "eager_violations": check_agreement(eager_run, k),
    }
