"""Verification: specification checks, domination comparisons, unbeatability evidence."""

from .beatability import (
    BeatabilityWitness,
    EagerOptMin,
    beating_attempt_witness,
    demonstrate_unbeatability_mechanism,
    find_agreement_violation,
)
from .checker import CheckReport, check_protocol, check_protocols, exhaustive_context_check
from .domination import (
    DecisionProfile,
    DominationReport,
    compare_protocols,
    decision_time_table,
    last_decider_compare,
)
from .properties import (
    Violation,
    check_agreement,
    check_decision,
    check_decision_times,
    check_nonuniform_run,
    check_run_for_protocol,
    check_uniform_agreement,
    check_uniform_run,
    check_validity,
    proposition1_bound,
    theorem3_bound,
)

__all__ = [
    "BeatabilityWitness",
    "CheckReport",
    "DecisionProfile",
    "DominationReport",
    "EagerOptMin",
    "Violation",
    "beating_attempt_witness",
    "check_agreement",
    "check_decision",
    "check_decision_times",
    "check_nonuniform_run",
    "check_protocol",
    "check_protocols",
    "check_run_for_protocol",
    "check_uniform_agreement",
    "check_uniform_run",
    "check_validity",
    "compare_protocols",
    "decision_time_table",
    "demonstrate_unbeatability_mechanism",
    "exhaustive_context_check",
    "find_agreement_violation",
    "last_decider_compare",
    "proposition1_bound",
    "theorem3_bound",
]
