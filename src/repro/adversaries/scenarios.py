"""The paper's illustrative adversaries (Figures 1, 2 and 4), generalised.

Each builder returns a :class:`Scenario`: the adversary together with the
roles of the participating processes, the context it lives in, and the
decision-time expectations the corresponding figure states.  The FIG*
benchmarks and several integration tests consume these scenarios.

* :func:`figure1_scenario` — a hidden path w.r.t. ``<i, m>`` (Section 3,
  Fig. 1): a chain of processes crashing one per round, each delivering only
  to its successor, silently carrying an initial value that the observer
  never learns about.  With the value present the observer cannot decide 1
  in Opt0; the benchmark sweeps the chain length.
* :func:`figure2_scenario` — hidden capacity ``k`` at ``<i, m>`` (Section 4,
  Fig. 2): ``k`` disjoint hidden chains.  The observer cannot decide under
  Optmin[k] while the chains persist, and Lemma 2 turns the chains into
  carriers of arbitrary values.
* :func:`figure4_scenario` — the uniform-consensus speed-up run (Section 5,
  Fig. 4): ``k``-ish crashes per round keep every failure-counting baseline
  undecided until ``⌊t/k⌋ + 1``, yet the information flow makes the hidden
  capacity of every surviving process drop below ``k`` at time 2, so
  u-Pmin[k] decides at time 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..model.adversary import Adversary, Context
from ..model.failure_pattern import CrashEvent, FailurePattern
from ..model.types import ProcessId, Value
from .generators import crash_chain_events


@dataclass(frozen=True)
class Scenario:
    """An adversary plus the metadata needed to interpret it.

    Attributes
    ----------
    name:
        Short identifier (``"fig1"``, ``"fig2"``, ``"fig4"``).
    adversary:
        The adversary ``α = (v⃗, F)``.
    context:
        A context that admits the adversary.
    observer:
        The process the figure reasons about (``i`` in the paper).
    roles:
        Named process groups (chains, revealers, correct processes, ...).
    expectations:
        Free-form figure expectations (e.g. the expected decision time of a
        protocol on this adversary), used by benchmarks for reporting and by
        tests for assertions.
    """

    name: str
    adversary: Adversary
    context: Context
    observer: ProcessId
    roles: Dict[str, Tuple[ProcessId, ...]] = field(default_factory=dict)
    expectations: Dict[str, int] = field(default_factory=dict)


def figure1_scenario(chain_length: int = 2, extra_processes: int = 1, chain_value: Value = 0) -> Scenario:
    """The Fig. 1 hidden-path adversary for binary consensus.

    Parameters
    ----------
    chain_length:
        The number of crashing chain members, i.e. the time ``m`` up to which
        the path stays hidden from the observer.  Fig. 1 uses ``m = 2``.
    extra_processes:
        Additional always-correct processes holding value 1 (besides the
        observer).
    chain_value:
        The value silently carried by the chain (0 in the figure).

    The chain occupies processes ``1 .. chain_length + 1``: member ``ℓ``
    crashes in round ``ℓ + 1`` delivering only to member ``ℓ + 1``; the last
    member stays alive, so at time ``chain_length`` it may be the only
    process knowing ``chain_value``.
    """
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    observer = 0
    chain = list(range(1, chain_length + 2))
    n = 1 + len(chain) + extra_processes
    values = [1] * n
    values[chain[0]] = chain_value
    pattern = FailurePattern(n, crash_chain_events(chain))
    t = max(chain_length, 1)
    context = Context(n=n, t=t, k=1, max_value=1 if chain_value <= 1 else chain_value)
    adversary = Adversary(values, pattern)
    context.validate(adversary)
    return Scenario(
        name="fig1",
        adversary=adversary,
        context=context,
        observer=observer,
        roles={
            "chain": tuple(chain),
            "correct": tuple(
                p for p in range(n) if p not in set(chain[:-1])
            ),
        },
        expectations={
            # The observer cannot decide 1 before the chain is exhausted; with
            # the chain delivering the 0 onwards, Opt0 has the observer decide
            # only once some layer has no hidden node.
            "observer_min_decision_time": chain_length,
        },
    )


def figure2_scenario(k: int = 3, depth: int = 2, extra_processes: int = 1, high_value: Value | None = None) -> Scenario:
    """The Fig. 2 hidden-capacity adversary: ``k`` disjoint hidden chains.

    ``k`` chains, each with ``depth + 1`` members (layers ``0 .. depth``).
    The layer-``ℓ`` member of every chain crashes in round ``ℓ + 1``
    delivering only to the layer-``ℓ+1`` member, so at every layer
    ``0 .. depth`` exactly ``k`` nodes are hidden from the observer — i.e.
    ``HC<observer, depth> >= k`` (in fact ``= k`` once enough failures are
    known), which is exactly the situation in which Optmin[k] must stay
    undecided.

    All processes start with the high value ``k`` (the chains are hidden
    *capacity*, not hidden values: Lemma 2 can retro-fit arbitrary values
    onto them).
    """
    if k < 1 or depth < 1:
        raise ValueError("k and depth must be >= 1")
    high = k if high_value is None else high_value
    observer = 0
    chains: List[List[ProcessId]] = []
    next_pid = 1
    for _ in range(k):
        chain = list(range(next_pid, next_pid + depth + 1))
        next_pid += depth + 1
        chains.append(chain)
    n = next_pid + extra_processes
    values = [high] * n
    events: List[CrashEvent] = []
    for chain in chains:
        events.extend(crash_chain_events(chain))
    pattern = FailurePattern(n, events)
    f = k * depth
    context = Context(n=n, t=max(f, 1), k=k, max_value=high)
    adversary = Adversary(values, pattern)
    context.validate(adversary)
    return Scenario(
        name="fig2",
        adversary=adversary,
        context=context,
        observer=observer,
        roles={
            **{f"chain{idx}": tuple(chain) for idx, chain in enumerate(chains)},
            "chains_flat": tuple(p for chain in chains for p in chain),
            "correct": tuple(
                p
                for p in range(n)
                if p not in {member for chain in chains for member in chain[:-1]}
            ),
        },
        expectations={
            "observer_hidden_capacity_at_depth": k,
            "observer_earliest_decision": depth + 1,
        },
    )


def figure4_scenario(k: int = 3, rounds: int = 4, correct_processes: int = 2) -> Scenario:
    """The Fig. 4 adversary: u-Pmin[k] decides at time 2, baselines at ``⌊t/k⌋ + 1``.

    Construction (generalising the figure; ``rounds`` is the paper's
    ``⌊t/k⌋``, i.e. the number of rounds during which every correct process
    keeps perceiving at least ``k`` new failures):

    * ``k - 1`` *value chains* carry the low values ``0 .. k-2``: the layer-``ℓ``
      carrier of chain ``b`` crashes in round ``ℓ + 1`` delivering only to the
      layer-``ℓ+1`` carrier, exactly as in Fig. 2.
    * Round 1 additionally crashes two high-valued processes: ``silent``
      delivers only to the round-2 ``revealer``, and ``late_revealed``
      delivers to everybody *except* the revealer.
    * Round 2 additionally crashes the ``revealer``, which delivers to
      everybody.  Its relayed view simultaneously (i) shows the survivors the
      initial state of ``silent`` — shrinking the set of layer-0 nodes hidden
      from them to the ``k - 1`` value-chain heads, i.e. hidden capacity
      ``k - 1 < k`` — and (ii) reveals the crash of ``late_revealed``, keeping
      the number of *newly perceived* failures at ``k`` so the
      failure-counting baselines stay undecided.
    * Rounds ``3 .. rounds`` each crash the next carrier of every value chain
      plus one fresh high-valued process that delivers to nobody, so the
      baselines keep perceiving ``k`` new failures per round.

    With ``f = t = k * rounds + 1``, the baselines decide at time
    ``⌊t/k⌋ + 1 = rounds + 1`` while every correct process decides the high
    value ``k`` at time 2 under u-Pmin[k].
    """
    if k < 2:
        raise ValueError("the figure-4 construction needs k >= 2")
    if rounds < 2:
        raise ValueError("rounds must be >= 2")

    pid = 0

    def take(count: int) -> List[ProcessId]:
        nonlocal pid
        block = list(range(pid, pid + count))
        pid += count
        return block

    correct = take(correct_processes)
    # Value chains: chain b has carriers for layers 0 .. rounds-1.
    chains = [take(rounds) for _ in range(k - 1)]
    silent = take(1)[0]
    late_revealed = take(1)[0]
    revealer = take(1)[0]
    extras = take(max(rounds - 2, 0))
    n = pid

    values = [k] * n
    for b, chain in enumerate(chains):
        values[chain[0]] = b  # low values 0 .. k-2

    events: List[CrashEvent] = []
    # Value chains: carrier ℓ crashes in round ℓ+1 delivering only to carrier ℓ+1
    # (the final carrier delivers to nobody).
    for chain in chains:
        for layer, carrier in enumerate(chain):
            receivers = frozenset({chain[layer + 1]}) if layer + 1 < len(chain) else frozenset()
            events.append(CrashEvent(carrier, layer + 1, receivers))
    # Round 1: `silent` delivers only to the revealer; `late_revealed` delivers
    # to everyone except the revealer.
    events.append(CrashEvent(silent, 1, frozenset({revealer})))
    events.append(
        CrashEvent(
            late_revealed,
            1,
            frozenset(q for q in range(n) if q not in (late_revealed, revealer)),
        )
    )
    # Round 2: the revealer delivers to everyone.
    events.append(
        CrashEvent(revealer, 2, frozenset(q for q in range(n) if q != revealer))
    )
    # Rounds 3..rounds: one fresh, fully silent crash per round.
    for idx, extra in enumerate(extras):
        events.append(CrashEvent(extra, 3 + idx, frozenset()))

    pattern = FailurePattern(n, events)
    f = pattern.num_failures
    t = f
    context = Context(n=n, t=t, k=k, max_value=k)
    adversary = Adversary(values, pattern)
    context.validate(adversary)
    return Scenario(
        name="fig4",
        adversary=adversary,
        context=context,
        observer=correct[0],
        roles={
            "correct": tuple(correct),
            "silent": (silent,),
            "late_revealed": (late_revealed,),
            "revealer": (revealer,),
            "extras": tuple(extras),
            **{f"chain{b}": tuple(chain) for b, chain in enumerate(chains)},
        },
        expectations={
            "upmin_decision_time": 2,
            "baseline_decision_time": rounds + 1,
            "deadline": t // k + 1,
        },
    )
