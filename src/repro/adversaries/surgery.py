"""Run surgery: the constructive adversary transformation of Lemma 2.

Lemma 2 is the combinatorial engine behind both unbeatability proofs: given a
run ``r``, a node ``<i, m>`` with hidden capacity ``c`` and any ``c`` values
``v_1 .. v_c``, there exists a run ``r'`` of the same protocol that ``i``
cannot distinguish from ``r`` at time ``m`` (``r'_i(m) = r_i(m)``), in which

(a) the layer-``ℓ`` witness of chain ``b`` has seen ``v_b``,
(b) apart from ``v_b`` it has seen nothing that ``i`` has not seen, and
(c) it still has hidden capacity ``>= c - 1``, witnessed by the other chains.

The construction turns the hidden-capacity witnesses into ``c`` disjoint crash
chains: the layer-``ℓ`` witness of chain ``b`` crashes at time ``ℓ`` (round
``ℓ+1``) delivering only to the layer-``ℓ+1`` witness, it receives the same
round-``ℓ`` messages as ``i`` plus a message from ``i`` and the chain message
from its predecessor, and the chain heads are re-assigned the initial values
``v_1 .. v_c``.

:func:`lemma2_surgery` implements this transformation on adversaries (the
failure pattern and input vector are what the external scheduler controls; the
run is then re-simulated).  :func:`verify_surgery` re-simulates the surgered
adversary and checks the lemma's guarantees, which is how the FIG2/FIG3
benchmarks and the unbeatability tests exercise the combinatorial proof
constructively.  The re-simulation runs on either engine
(``engine="batch"`` materialises the surgered views on the copy-on-write
layer chain via :class:`repro.engine.LayerViews`; ``engine="reference"``
keeps the per-adversary oracle ``Run``) — the checks are view-only and both
paths are pinned together by ``tests/test_complex_differential.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..knowledge.hidden import disjoint_hidden_chains
from ..model.adversary import Adversary
from ..model.failure_pattern import CrashEvent, FailurePattern
from ..model.run import Run
from ..model.types import ProcessId, Time, Value
from ..model.view import view_key


@dataclass(frozen=True)
class SurgeryResult:
    """The outcome of a Lemma 2 surgery.

    Attributes
    ----------
    adversary:
        The surgered adversary (defining the run ``r'``).
    chains:
        The witness chains used: ``chains[b][ℓ]`` is the layer-``ℓ`` witness
        of chain ``b`` (the paper's ``i^ℓ_b``).
    values:
        The values assigned to the chains (``values[b]`` travels down chain
        ``b``).
    observer:
        The observed process ``i``.
    time:
        The observation time ``m``.
    """

    adversary: Adversary
    chains: Tuple[Tuple[ProcessId, ...], ...]
    values: Tuple[Value, ...]
    observer: ProcessId
    time: Time


def lemma2_surgery(
    run: Run,
    observer: ProcessId,
    time: Time,
    values: Sequence[Value],
    chains: Optional[Sequence[Sequence[ProcessId]]] = None,
) -> SurgeryResult:
    """Apply the Lemma 2 construction to ``<observer, time>`` in ``run``.

    Parameters
    ----------
    run:
        The original run ``r`` (only its adversary and the observer's view are
        used).
    observer, time:
        The node ``<i, m>`` the construction is anchored at.  The observer
        must be active at ``time``.
    values:
        The values ``v_1 .. v_c`` to be carried by the chains; ``c`` must not
        exceed the observer's hidden capacity at ``time``.
    chains:
        Optional explicit witness chains (``c`` chains of ``time + 1``
        processes each, pairwise disjoint within every layer and all hidden
        from the observer).  When omitted, chains are derived from the
        observer's view via :func:`repro.knowledge.hidden.disjoint_hidden_chains`.

    Returns
    -------
    SurgeryResult
        The surgered adversary plus the chain/value bookkeeping.
    """
    view = run.view(observer, time)
    c = len(values)
    if c == 0:
        raise ValueError("at least one value must be supplied")
    if c > view.hidden_capacity():
        raise ValueError(
            f"requested {c} chains but the hidden capacity of <{observer},{time}> is only "
            f"{view.hidden_capacity()}"
        )
    if chains is None:
        chains = disjoint_hidden_chains(view, c)
    chains = tuple(tuple(chain) for chain in chains)
    _validate_chains(view, chains, time)

    adversary = run.adversary
    n = adversary.n
    new_values = list(adversary.values)
    for b, chain in enumerate(chains):
        new_values[chain[0]] = values[b]

    crash_map: Dict[ProcessId, CrashEvent] = {e.process: e for e in adversary.pattern.crashes}
    witnesses_at_layer: Dict[Time, Dict[ProcessId, Tuple[int, int]]] = {}
    for b, chain in enumerate(chains):
        for layer, w in enumerate(chain):
            witnesses_at_layer.setdefault(layer, {})[w] = (b, layer)

    # Step 1: witnesses at layers < m crash at their layer, delivering only to
    # the next chain member.  Witnesses at layer m must be alive through round
    # m (drop any earlier crash; a later crash is irrelevant to <i, m> and we
    # simply remove it to keep the pattern minimal).
    for b, chain in enumerate(chains):
        for layer, w in enumerate(chain):
            if layer < time:
                crash_map[w] = CrashEvent(w, layer + 1, frozenset({chain[layer + 1]}))
            else:
                crash_map.pop(w, None)

    # Step 2: every *other* process crashing in round ℓ must deliver to the
    # layer-ℓ witnesses exactly when it delivers to the observer (plus the
    # observer itself always delivers to the witnesses of the layer matching
    # its own crash round, should it crash).
    all_chain_members = {w for chain in chains for w in chain}
    for p, event in list(crash_map.items()):
        if p in all_chain_members:
            continue
        layer = event.round
        layer_witnesses = witnesses_at_layer.get(layer, {})
        if not layer_witnesses:
            continue
        receivers = set(event.receivers)
        delivers_to_observer = observer in receivers or p == observer
        for w in layer_witnesses:
            if w == p:
                continue
            if p == observer or delivers_to_observer:
                receivers.add(w)
            else:
                receivers.discard(w)
        crash_map[p] = CrashEvent(p, event.round, frozenset(receivers - {p}))

    new_pattern = FailurePattern(n, crash_map.values())
    new_adversary = Adversary(new_values, new_pattern)
    return SurgeryResult(
        adversary=new_adversary,
        chains=chains,
        values=tuple(values),
        observer=observer,
        time=time,
    )


def _validate_chains(view, chains: Tuple[Tuple[ProcessId, ...], ...], time: Time) -> None:
    """Sanity checks: chains have the right length, are layer-disjoint and hidden."""
    for chain in chains:
        if len(chain) != time + 1:
            raise ValueError(
                f"every chain must have {time + 1} members (one per layer), got {len(chain)}"
            )
    for layer in range(time + 1):
        members = [chain[layer] for chain in chains]
        if len(set(members)) != len(members):
            raise ValueError(f"chains are not disjoint at layer {layer}: {members}")
        hidden = view.hidden_processes_at(layer)
        not_hidden = [m for m in members if m not in hidden]
        if not_hidden:
            raise ValueError(
                f"processes {not_hidden} are not hidden from the observer at layer {layer}"
            )


@dataclass(frozen=True)
class SurgeryCheck:
    """The verdict of :func:`verify_surgery` (all fields should be ``True``)."""

    observer_view_preserved: bool
    values_delivered: bool
    no_foreign_values: bool
    residual_capacity: bool

    @property
    def ok(self) -> bool:
        """Whether every guarantee of Lemma 2 held."""
        return (
            self.observer_view_preserved
            and self.values_delivered
            and self.no_foreign_values
            and self.residual_capacity
        )


def verify_surgery(
    original: Run,
    result: SurgeryResult,
    protocol=None,
    t: Optional[int] = None,
    engine: str = "batch",
) -> SurgeryCheck:
    """Re-simulate the surgered adversary and check Lemma 2's guarantees.

    Checks, with ``r`` the original run and ``r'`` the surgered one:

    * ``r'_i(m) = r_i(m)`` — the observer cannot tell the runs apart;
    * ``values[b] ∈ Vals<i^ℓ_b, ℓ>`` for every chain ``b`` and layer ``ℓ``;
    * ``Vals<i^ℓ_b, ℓ> \\ {values[b]} ⊆ Vals<i, ℓ>``;
    * ``HC<i^ℓ_b, ℓ> >= c - 1`` for every chain ``b`` and layer ``ℓ``.

    ``engine="batch"`` (default) re-simulates on the copy-on-write layer
    chain; passing a ``protocol`` forces the reference path (the batch chain
    simulates bare views, and the pre-port behaviour of re-running under the
    protocol — including its early stopping — is preserved for such
    callers).  ``engine="reference"`` always re-runs the oracle ``Run``.
    Indistinguishability is asserted through the canonical ``view_key``,
    which is engine-agnostic.
    """
    from ..engine.sweep import validate_engine_choice
    from ..engine.views import LayerViews

    validate_engine_choice(engine)
    t = original.t if t is None else t
    horizon = max(original.horizon, result.time)
    if engine == "batch" and protocol is None:
        surgered = LayerViews(result.adversary, t, horizon)
    else:
        surgered = Run(protocol, result.adversary, t, horizon=horizon)
    observer, time = result.observer, result.time
    c = len(result.chains)

    view_preserved = view_key(surgered.view(observer, time)) == view_key(
        original.view(observer, time)
    )

    values_delivered = True
    no_foreign = True
    residual = True
    for b, chain in enumerate(result.chains):
        vb = result.values[b]
        for layer, w in enumerate(chain):
            witness_view = surgered.view(w, layer)
            if vb not in witness_view.values():
                values_delivered = False
            observer_view = surgered.view(observer, layer)
            if not (witness_view.values() - {vb}) <= observer_view.values():
                no_foreign = False
            if witness_view.hidden_capacity() < c - 1:
                residual = False
    return SurgeryCheck(
        observer_view_preserved=view_preserved,
        values_delivered=values_delivered,
        no_foreign_values=no_foreign,
        residual_capacity=residual,
    )
