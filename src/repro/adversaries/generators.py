"""Random and structured adversary generators.

The benchmarks and property tests need large families of adversaries
``α = (v⃗, F)`` drawn from a context ``γ = (n, t, k)``.  This module provides:

* :class:`AdversaryGenerator` — a seeded random generator over a context,
  with knobs controlling how adversarial the failure patterns are (how many
  crashes, how they spread over rounds, how selective the crashing-round
  deliveries are);
* :func:`crash_chain_adversary` — the "hidden chain" building block: a
  sequence of processes each crashing one round after the other, every crash
  delivering only to the next process in the chain (the pattern behind
  Figs. 1 and 2 and behind every lower-bound construction in this area);
* :func:`block_crash_adversary` — ``k`` crashes per round with configurable
  visibility, the worst-case pattern for the failure-counting baselines.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..model.adversary import Adversary, Context
from ..model.failure_pattern import CrashEvent, FailurePattern
from ..model.types import ProcessId, Round, Value


class AdversaryGenerator:
    """A seeded random adversary generator for a fixed context.

    Parameters
    ----------
    context:
        The context ``γ`` to draw adversaries from.
    seed:
        Seed for the private :class:`random.Random` instance (generation is
        fully deterministic given the seed).
    max_crash_round:
        Crashes are placed in rounds ``1 .. max_crash_round`` (so it must be
        ``>= 1`` when given).  Defaults to the context's worst-case horizon,
        which is where crashes can still influence decisions.
    """

    def __init__(
        self,
        context: Context,
        seed: int = 0,
        max_crash_round: Optional[int] = None,
    ) -> None:
        if max_crash_round is not None and max_crash_round < 1:
            # This generator *places* crashes, so it needs at least round 1;
            # a falsy 0 used to be silently coerced to the horizon instead.
            raise ValueError(
                f"max_crash_round must be >= 1 (got {max_crash_round}); "
                f"sample a failure-free space with random_adversary(num_failures=0)"
            )
        self._context = context
        self._rng = random.Random(seed)
        self._max_crash_round = (
            context.horizon() if max_crash_round is None else max_crash_round
        )

    @property
    def context(self) -> Context:
        """The context adversaries are drawn from."""
        return self._context

    # ----------------------------------------------------------------- parts
    def random_values(self) -> Tuple[Value, ...]:
        """A uniformly random input vector over the context's value domain."""
        domain = list(self._context.values_domain)
        return tuple(self._rng.choice(domain) for _ in range(self._context.n))

    def random_pattern(self, num_failures: Optional[int] = None) -> FailurePattern:
        """A random failure pattern with ``num_failures`` crashes (random if ``None``)."""
        n, t = self._context.n, self._context.t
        if num_failures is None:
            num_failures = self._rng.randint(0, t)
        if not 0 <= num_failures <= t:
            raise ValueError(f"num_failures must be in 0..{t}, got {num_failures}")
        faulty = self._rng.sample(range(n), num_failures)
        events = []
        for p in faulty:
            round_ = self._rng.randint(1, self._max_crash_round)
            others = [q for q in range(n) if q != p]
            # Bias towards highly selective deliveries: those are the patterns
            # that keep nodes hidden and therefore stress the protocols most.
            mode = self._rng.random()
            if mode < 0.35:
                receivers: List[ProcessId] = []
            elif mode < 0.70:
                receivers = self._rng.sample(others, self._rng.randint(1, max(1, len(others) // 2)))
            elif mode < 0.85:
                receivers = self._rng.sample(others, self._rng.randint(1, len(others)))
            else:
                receivers = others
            events.append(CrashEvent(p, round_, frozenset(receivers)))
        return FailurePattern(n, events)

    # ------------------------------------------------------------- adversaries
    def random_adversary(self, num_failures: Optional[int] = None) -> Adversary:
        """A random adversary from the context."""
        adversary = Adversary(self.random_values(), self.random_pattern(num_failures))
        self._context.validate(adversary)
        return adversary

    def sample(self, count: int, num_failures: Optional[int] = None) -> List[Adversary]:
        """A list of ``count`` random adversaries."""
        return [self.random_adversary(num_failures) for _ in range(count)]

    def stream(self, num_failures: Optional[int] = None) -> Iterator[Adversary]:
        """An infinite stream of random adversaries."""
        while True:
            yield self.random_adversary(num_failures)


def crash_chain_events(
    chain: Sequence[ProcessId],
    first_round: Round = 1,
) -> List[CrashEvent]:
    """Crash events for a "hidden chain": each member delivers only to the next one.

    ``chain[0]`` crashes in ``first_round`` delivering only to ``chain[1]``,
    ``chain[1]`` crashes in ``first_round + 1`` delivering only to
    ``chain[2]``, and so on.  The last member of the chain does not crash.
    """
    events = []
    for idx in range(len(chain) - 1):
        events.append(
            CrashEvent(chain[idx], first_round + idx, frozenset({chain[idx + 1]}))
        )
    return events


def crash_chain_adversary(
    n: int,
    chain: Sequence[ProcessId],
    chain_value: Value,
    default_value: Value,
) -> Adversary:
    """An adversary with a single hidden chain carrying ``chain_value``.

    All processes start with ``default_value`` except ``chain[0]``, which
    starts with ``chain_value``; the chain members crash one per round, each
    delivering only to its successor (so the value silently travels down the
    chain).  This is the Fig. 1 pattern for consensus.
    """
    values = [default_value] * n
    values[chain[0]] = chain_value
    pattern = FailurePattern(n, crash_chain_events(chain))
    return Adversary(values, pattern)


def block_crash_adversary(
    n: int,
    k: int,
    rounds: int,
    values: Optional[Sequence[Value]] = None,
    visible: bool = True,
) -> Adversary:
    """``k`` crashes in each of the first ``rounds`` rounds.

    When ``visible`` is ``True``, crashing processes deliver to nobody, so
    every surviving process perceives exactly ``k`` new failures per round —
    the worst case for the failure-counting baselines (they cannot decide
    before time ``rounds + 1``).  When ``False``, crashing processes deliver
    to everybody, so nobody perceives the failures until one round later.

    The crashing processes are ``0 .. k*rounds - 1`` in round-major order;
    ``values`` defaults to everyone holding ``k``.
    """
    if k * rounds > n - 1:
        raise ValueError(
            f"cannot crash {k} processes in each of {rounds} rounds with n={n} (need at least one survivor)"
        )
    if values is None:
        values = [k] * n
    events = []
    process = 0
    for round_ in range(1, rounds + 1):
        for _ in range(k):
            receivers = frozenset() if visible else frozenset(
                q for q in range(n) if q != process
            )
            events.append(CrashEvent(process, round_, receivers))
            process += 1
    return Adversary(values, FailurePattern(n, events))


def failure_free_adversaries(context: Context) -> Iterator[Adversary]:
    """All failure-free adversaries of a context (one per input vector).

    The number of vectors is ``(d+1)^n``; callers are expected to use this
    only for small contexts (it is handy for exhaustive Validity checks).
    """
    domain = list(context.values_domain)
    n = context.n

    def rec(prefix: List[Value]) -> Iterator[Adversary]:
        if len(prefix) == n:
            yield Adversary.failure_free(prefix)
            return
        for v in domain:
            yield from rec(prefix + [v])

    yield from rec([])
