"""Exhaustive adversary enumeration for small systems.

Unbeatability and agreement are universally quantified statements over all
adversaries of a context; for small contexts the quantifier can be discharged
by brute force.  This module enumerates adversaries — input vectors crossed
with failure patterns — under configurable restrictions that keep the space
tractable while preserving the interesting structure:

* ``max_crash_round`` bounds how late crashes may happen (crashes later than
  the decision horizon cannot influence decisions);
* ``receiver_policy`` controls which crashing-round delivery subsets are
  enumerated: ``"all"`` (every subset — exponential), ``"canonical"`` (the
  empty set, the full set, and every singleton — the subsets that matter for
  hidden-path/hidden-capacity structure), or ``"none"`` (silent crashes only);
* ``max_failures`` optionally lowers the number of crashes below ``t``.

The exhaustive model-checking tests (``tests/test_exhaustive.py``) and the
verification helpers in :mod:`repro.verification.checker` are the primary
consumers.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..model.adversary import Adversary, Context
from ..model.failure_pattern import CrashEvent, FailurePattern
from ..model.types import ProcessId, Round, Value


def enumerate_input_vectors(context: Context) -> Iterator[Tuple[Value, ...]]:
    """All input vectors of the context (``(d+1)^n`` of them)."""
    domain = list(context.values_domain)
    yield from itertools.product(domain, repeat=context.n)


def _receiver_subsets(
    n: int, crasher: ProcessId, policy: str
) -> Iterator[frozenset]:
    others = [q for q in range(n) if q != crasher]
    if policy == "none":
        yield frozenset()
    elif policy == "canonical":
        yield frozenset()
        for q in others:
            yield frozenset({q})
        if len(others) > 1:
            # With one other process the full set IS the singleton already
            # yielded; emitting it again used to duplicate every n=2
            # crashing adversary (breaking "exhaustive" counts and the
            # orbit partition sum(sizes) == count).
            yield frozenset(others)
    elif policy == "all":
        for size in range(len(others) + 1):
            for subset in itertools.combinations(others, size):
                yield frozenset(subset)
    else:
        raise ValueError(f"unknown receiver policy {policy!r}")


def enumerate_failure_patterns(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
) -> Iterator[FailurePattern]:
    """All failure patterns of the context under the given restrictions."""
    n = context.n
    max_failures = context.t if max_failures is None else min(max_failures, context.t)
    max_round = context.horizon() if max_crash_round is None else max_crash_round
    for count in range(max_failures + 1):
        for faulty in itertools.combinations(range(n), count):
            per_process_options: List[List[CrashEvent]] = []
            for p in faulty:
                options = [
                    CrashEvent(p, round_, receivers)
                    for round_ in range(1, max_round + 1)
                    for receivers in _receiver_subsets(n, p, receiver_policy)
                ]
                per_process_options.append(options)
            for combo in itertools.product(*per_process_options):
                yield FailurePattern(n, combo)


def enumerate_adversaries(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[Adversary]:
    """All adversaries of the context under the given restrictions.

    Patterns are enumerated in the outer loop and input vectors in the inner
    loop.  ``limit`` truncates the stream to exactly that many adversaries
    (``<= 0`` yields nothing); when it is ``None`` the stream is exhaustive
    for the restricted space.
    """
    if limit is not None and limit <= 0:
        return
    produced = 0
    for pattern in enumerate_failure_patterns(
        context, max_crash_round, receiver_policy, max_failures
    ):
        for values in enumerate_input_vectors(context):
            yield Adversary(values, pattern)
            produced += 1
            if limit is not None and produced >= limit:
                return


def estimate_adversary_count(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
) -> int:
    """The size of the restricted adversary space, in closed form.

    Exact (it mirrors the enumeration structure: independent per-crasher
    options crossed over faulty sets, times the input-vector count) but
    O(t) to evaluate — use it to decide whether a space is tractable
    *before* enumerating it.
    """
    n = context.n
    max_failures = context.t if max_failures is None else min(max_failures, context.t)
    max_round = context.horizon() if max_crash_round is None else max_crash_round
    if receiver_policy == "none":
        subsets = 1
    elif receiver_policy == "canonical":
        # ∅, the n-1 singletons, and the full set — which collapses onto the
        # lone singleton when n = 2 (mirroring _receiver_subsets' dedup).
        subsets = n + 1 if n > 2 else n
    elif receiver_policy == "all":
        subsets = 2 ** (n - 1)
    else:
        raise ValueError(f"unknown receiver policy {receiver_policy!r}")
    # Non-positive max_round admits no crashing rounds (enumeration's
    # range(1, max_round + 1) is empty), so only the failure-free pattern
    # survives — mirror that instead of summing sign-garbled powers.
    options = max(max_round, 0) * subsets
    patterns = sum(math.comb(n, count) * options**count for count in range(max_failures + 1))
    return patterns * len(context.values_domain) ** n


def count_adversaries(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
) -> int:
    """The size of the restricted adversary space (by direct counting)."""
    return sum(
        1
        for _ in enumerate_adversaries(
            context, max_crash_round, receiver_policy, max_failures
        )
    )


# ------------------------------------------------------------ orbit streams
@dataclass(frozen=True)
class AdversaryOrbit:
    """One process-renaming orbit of a restricted adversary space.

    Attributes
    ----------
    representative:
        The canonical orbit representative (itself a member of the space —
        every enumeration restriction is renaming-invariant, so the spaces
        are closed under the group action).
    size:
        The number of distinct adversaries in the orbit, which is exactly the
        number of space members the representative stands for.
    certificate:
        The permutation ``π`` with ``representative = π · first member``,
        where *first member* is the first orbit member the underlying
        enumeration produced; decision times and views lift back through it.
        On the constructive path the representative *is* the first (and only)
        member produced, so the certificate is the identity.
    """

    representative: Adversary
    size: int
    certificate: Tuple[int, ...]


#: How ``enumerate_orbits``/``count_orbits`` produce the orbit stream:
#: ``"constructive"`` (default) generates one canonical object per orbit by
#: canonical augmentation; ``"dedup"`` is the retained hash-dedup oracle that
#: canonicalises every space member.
ORBIT_MODES = ("constructive", "dedup")


def _validate_orbit_mode(symmetry: str) -> None:
    if symmetry not in ORBIT_MODES:
        raise ValueError(
            f"unknown orbit-enumeration mode {symmetry!r}; choose 'constructive' "
            f"(generate one object per orbit) or 'dedup' (the hash-dedup oracle)"
        )


def _resolve_restrictions(
    context: Context, max_crash_round: Optional[int], max_failures: Optional[int]
) -> Tuple[int, int]:
    """The (max round, max failures) pair the enumerators actually use."""
    resolved_failures = (
        context.t if max_failures is None else min(max_failures, context.t)
    )
    resolved_round = context.horizon() if max_crash_round is None else max_crash_round
    return resolved_round, resolved_failures


def enumerate_orbits(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
    limit: Optional[int] = None,
    symmetry: str = "constructive",
) -> Iterator[AdversaryOrbit]:
    """One :class:`AdversaryOrbit` per process-renaming orbit of the space.

    ``symmetry="constructive"`` (default) *generates* the canonical
    representatives directly: canonical failure patterns by canonical
    augmentation and, per pattern, input vectors up to the pattern stabiliser
    (:mod:`repro.symmetry.constructive`).  The work is proportional to the
    number of orbits — no member of the space outside the representatives is
    ever built, no canonical-key ``seen`` set is kept (memory is the
    augmentation depth) — and orbit sizes come in closed form from the
    factored stabiliser.

    ``symmetry="dedup"`` is the retained oracle: the full space is streamed
    through canonical-form hashing and each orbit is yielded the first time
    it is met, with its size from the orbit–stabiliser theorem
    (:func:`repro.symmetry.adversary_orbit_size`).  Both modes emit identical
    representatives and sizes (pinned by
    ``tests/test_constructive_enumeration.py``); they may differ in orbit
    *order* and in the certificate (constructive representatives are their
    own first member, so their certificates are the identity).

    The orbits partition the space: ``sum(orbit.size) ==
    count_adversaries(...)`` under the same restrictions.  ``limit`` caps the
    number of *orbits* yielded (a smoke-run device, like the adversary-level
    ``limit``).
    """
    _validate_orbit_mode(symmetry)
    if limit is not None and limit <= 0:
        return
    if symmetry == "constructive":
        yield from _enumerate_orbits_constructive(
            context, max_crash_round, receiver_policy, max_failures, limit
        )
        return

    from ..symmetry import adversary_orbit_size, canonical_adversary

    produced = 0
    seen = set()
    # One pattern-canonicalisation per distinct failure pattern: the
    # enumeration iterates input vectors in the inner loop, so the cache
    # amortises the graph search across every vector sharing the pattern.
    pattern_cache: dict = {}
    for adversary in enumerate_adversaries(
        context, max_crash_round, receiver_policy, max_failures
    ):
        canonical = canonical_adversary(adversary, pattern_cache=pattern_cache)
        if canonical.key in seen:
            continue
        seen.add(canonical.key)
        yield AdversaryOrbit(
            canonical.representative,
            adversary_orbit_size(canonical.representative),
            canonical.permutation,
        )
        produced += 1
        if limit is not None and produced >= limit:
            return


def _enumerate_orbits_constructive(
    context: Context,
    max_crash_round: Optional[int],
    receiver_policy: str,
    max_failures: Optional[int],
    limit: Optional[int],
) -> Iterator[AdversaryOrbit]:
    """The canonical-augmentation orbit stream (see :func:`enumerate_orbits`)."""
    from ..symmetry import (
        identity_permutation,
        iter_canonical_patterns,
        iter_canonical_vectors,
        vector_orbit_size,
    )

    max_round, failures = _resolve_restrictions(context, max_crash_round, max_failures)
    domain = tuple(context.values_domain)
    identity = identity_permutation(context.n)
    produced = 0
    for node in iter_canonical_patterns(context.n, max_round, receiver_policy, failures):
        pattern = node.pattern()
        for values in iter_canonical_vectors(node, domain):
            yield AdversaryOrbit(
                Adversary(values, pattern), vector_orbit_size(node, values), identity
            )
            produced += 1
            if limit is not None and produced >= limit:
                return


def count_orbits(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
    symmetry: str = "constructive",
) -> int:
    """The number of process-renaming orbits of the restricted space.

    ``symmetry="constructive"`` (default) walks only the canonical-pattern
    augmentation tree and counts each pattern's vector orbits in closed form
    (binomial multiset counts per twin cell) — cost proportional to the
    number of *pattern* orbits, usable as a pre-flight tractability guard
    even on spaces whose full enumeration is out of reach.
    ``symmetry="dedup"`` counts through the lazy hash-dedup front
    (:func:`repro.symmetry.iter_orbit_representatives`) — the oracle, with
    cost proportional to the space.
    """
    return pattern_and_orbit_counts(
        context, max_crash_round, receiver_policy, max_failures, symmetry
    )[1]


def pattern_and_orbit_counts(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
    symmetry: str = "constructive",
    ceiling: Optional[int] = None,
) -> Tuple[int, int]:
    """``(pattern orbit count, adversary orbit count)`` in one pass.

    The constructive pass visits each canonical pattern once and sums its
    closed-form vector-orbit count; the dedup pass streams the whole space
    and counts distinct pattern/adversary keys (the oracle).  ``ceiling``
    turns the count into a bounded tractability probe: counting stops as
    soon as the orbit total exceeds it (the returned total is then a lower
    bound ``> ceiling``, which is all a guard needs).
    """
    _validate_orbit_mode(symmetry)
    if symmetry == "constructive":
        from ..symmetry import count_canonical_vectors, iter_canonical_patterns

        max_round, failures = _resolve_restrictions(
            context, max_crash_round, max_failures
        )
        domain_size = len(context.values_domain)
        patterns = orbits = 0
        for node in iter_canonical_patterns(
            context.n, max_round, receiver_policy, failures
        ):
            patterns += 1
            orbits += count_canonical_vectors(node, domain_size)
            if ceiling is not None and orbits > ceiling:
                break
        return patterns, orbits

    from ..symmetry import canonical_adversary, iter_orbit_representatives

    pattern_keys = set()
    orbits = 0
    for _index, adversary in iter_orbit_representatives(
        enumerate_adversaries(context, max_crash_round, receiver_policy, max_failures)
    ):
        orbits += 1
        pattern_keys.add(canonical_adversary(adversary).key[0])
        if ceiling is not None and orbits > ceiling:
            break
    return len(pattern_keys), orbits


# ------------------------------------------------------- space descriptions
@dataclass(frozen=True)
class RestrictedSpace:
    """A restricted adversary space as a first-class, lazily-enumerable value.

    Bundles a context with the restriction flags of
    :func:`enumerate_adversaries` so consumers can receive the *description*
    of a space instead of a materialised family.  Iterating yields the
    space's adversaries (streaming; ``limit`` truncates exactly like the
    enumerator's); :meth:`orbits` yields one :class:`AdversaryOrbit` per
    renaming orbit, constructively by default — which is what lets
    ``symmetry="constructive"`` consumers sweep spaces whose full enumeration
    is intractable (``limit`` then caps *orbits*, mirroring
    :func:`enumerate_orbits`).
    """

    context: Context
    max_crash_round: Optional[int] = None
    receiver_policy: str = "canonical"
    max_failures: Optional[int] = None
    limit: Optional[int] = None

    def __iter__(self) -> Iterator[Adversary]:
        return enumerate_adversaries(
            self.context,
            max_crash_round=self.max_crash_round,
            receiver_policy=self.receiver_policy,
            max_failures=self.max_failures,
            limit=self.limit,
        )

    def orbits(self, symmetry: str = "constructive") -> Iterator[AdversaryOrbit]:
        """One orbit per renaming class of the space (``limit`` caps orbits)."""
        return enumerate_orbits(
            self.context,
            max_crash_round=self.max_crash_round,
            receiver_policy=self.receiver_policy,
            max_failures=self.max_failures,
            limit=self.limit,
            symmetry=symmetry,
        )

    def estimated_size(self) -> int:
        """Closed-form member count of the (un-truncated) space."""
        return estimate_adversary_count(
            self.context,
            max_crash_round=self.max_crash_round,
            receiver_policy=self.receiver_policy,
            max_failures=self.max_failures,
        )

    def orbit_count(self, symmetry: str = "constructive") -> int:
        """Orbit count of the (un-truncated) space."""
        return count_orbits(
            self.context,
            max_crash_round=self.max_crash_round,
            receiver_policy=self.receiver_policy,
            max_failures=self.max_failures,
            symmetry=symmetry,
        )


def constructive_orbit_stream(adversaries) -> Iterator[AdversaryOrbit]:
    """Resolve a ``symmetry="constructive"`` family argument to an orbit stream.

    Accepts a :class:`RestrictedSpace` (the orbits are generated from the
    space description) or an iterable that already yields
    :class:`AdversaryOrbit` values (e.g. a pre-built
    :func:`enumerate_orbits` stream).  A plain adversary family is rejected
    with guidance: constructive enumeration needs the space's *description*
    to generate representatives — deduplicating an arbitrary family is what
    ``symmetry="quotient"`` is for.
    """
    if isinstance(adversaries, RestrictedSpace):
        return adversaries.orbits()
    iterator = iter(adversaries)
    first = next(iterator, None)
    if first is None:
        return iter(())
    if isinstance(first, AdversaryOrbit):
        return itertools.chain([first], iterator)
    raise ValueError(
        "symmetry='constructive' generates orbit representatives from a space "
        "description: pass a RestrictedSpace (or a stream of AdversaryOrbit "
        "from enumerate_orbits) instead of a plain adversary family, or use "
        "symmetry='quotient' to deduplicate an arbitrary family"
    )


def constructive_quotient(adversaries) -> Tuple[List[Adversary], List[int], List[int]]:
    """``(representatives, weights, indices)`` off the constructive stream.

    The same shape :func:`repro.symmetry.quotient_family` returns, so
    quotient consumers can fold constructive orbits through their existing
    weighted paths; ``indices`` number the orbits in generation order (there
    is no underlying exhaustive enumeration to index into).
    """
    representatives: List[Adversary] = []
    weights: List[int] = []
    indices: List[int] = []
    for index, orbit in enumerate(constructive_orbit_stream(adversaries)):
        representatives.append(orbit.representative)
        weights.append(orbit.size)
        indices.append(index)
    return representatives, weights, indices
