"""Exhaustive adversary enumeration for small systems.

Unbeatability and agreement are universally quantified statements over all
adversaries of a context; for small contexts the quantifier can be discharged
by brute force.  This module enumerates adversaries — input vectors crossed
with failure patterns — under configurable restrictions that keep the space
tractable while preserving the interesting structure:

* ``max_crash_round`` bounds how late crashes may happen (crashes later than
  the decision horizon cannot influence decisions);
* ``receiver_policy`` controls which crashing-round delivery subsets are
  enumerated: ``"all"`` (every subset — exponential), ``"canonical"`` (the
  empty set, the full set, and every singleton — the subsets that matter for
  hidden-path/hidden-capacity structure), or ``"none"`` (silent crashes only);
* ``max_failures`` optionally lowers the number of crashes below ``t``.

The exhaustive model-checking tests (``tests/test_exhaustive.py``) and the
verification helpers in :mod:`repro.verification.checker` are the primary
consumers.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..model.adversary import Adversary, Context
from ..model.failure_pattern import CrashEvent, FailurePattern
from ..model.types import ProcessId, Round, Value


def enumerate_input_vectors(context: Context) -> Iterator[Tuple[Value, ...]]:
    """All input vectors of the context (``(d+1)^n`` of them)."""
    domain = list(context.values_domain)
    yield from itertools.product(domain, repeat=context.n)


def _receiver_subsets(
    n: int, crasher: ProcessId, policy: str
) -> Iterator[frozenset]:
    others = [q for q in range(n) if q != crasher]
    if policy == "none":
        yield frozenset()
    elif policy == "canonical":
        yield frozenset()
        for q in others:
            yield frozenset({q})
        if len(others) > 1:
            # With one other process the full set IS the singleton already
            # yielded; emitting it again used to duplicate every n=2
            # crashing adversary (breaking "exhaustive" counts and the
            # orbit partition sum(sizes) == count).
            yield frozenset(others)
    elif policy == "all":
        for size in range(len(others) + 1):
            for subset in itertools.combinations(others, size):
                yield frozenset(subset)
    else:
        raise ValueError(f"unknown receiver policy {policy!r}")


def enumerate_failure_patterns(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
) -> Iterator[FailurePattern]:
    """All failure patterns of the context under the given restrictions."""
    n = context.n
    max_failures = context.t if max_failures is None else min(max_failures, context.t)
    max_round = context.horizon() if max_crash_round is None else max_crash_round
    for count in range(max_failures + 1):
        for faulty in itertools.combinations(range(n), count):
            per_process_options: List[List[CrashEvent]] = []
            for p in faulty:
                options = [
                    CrashEvent(p, round_, receivers)
                    for round_ in range(1, max_round + 1)
                    for receivers in _receiver_subsets(n, p, receiver_policy)
                ]
                per_process_options.append(options)
            for combo in itertools.product(*per_process_options):
                yield FailurePattern(n, combo)


def enumerate_adversaries(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[Adversary]:
    """All adversaries of the context under the given restrictions.

    Patterns are enumerated in the outer loop and input vectors in the inner
    loop.  ``limit`` truncates the stream to exactly that many adversaries
    (``<= 0`` yields nothing); when it is ``None`` the stream is exhaustive
    for the restricted space.
    """
    if limit is not None and limit <= 0:
        return
    produced = 0
    for pattern in enumerate_failure_patterns(
        context, max_crash_round, receiver_policy, max_failures
    ):
        for values in enumerate_input_vectors(context):
            yield Adversary(values, pattern)
            produced += 1
            if limit is not None and produced >= limit:
                return


def estimate_adversary_count(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
) -> int:
    """The size of the restricted adversary space, in closed form.

    Exact (it mirrors the enumeration structure: independent per-crasher
    options crossed over faulty sets, times the input-vector count) but
    O(t) to evaluate — use it to decide whether a space is tractable
    *before* enumerating it.
    """
    n = context.n
    max_failures = context.t if max_failures is None else min(max_failures, context.t)
    max_round = context.horizon() if max_crash_round is None else max_crash_round
    if receiver_policy == "none":
        subsets = 1
    elif receiver_policy == "canonical":
        # ∅, the n-1 singletons, and the full set — which collapses onto the
        # lone singleton when n = 2 (mirroring _receiver_subsets' dedup).
        subsets = n + 1 if n > 2 else n
    elif receiver_policy == "all":
        subsets = 2 ** (n - 1)
    else:
        raise ValueError(f"unknown receiver policy {receiver_policy!r}")
    # Non-positive max_round admits no crashing rounds (enumeration's
    # range(1, max_round + 1) is empty), so only the failure-free pattern
    # survives — mirror that instead of summing sign-garbled powers.
    options = max(max_round, 0) * subsets
    patterns = sum(math.comb(n, count) * options**count for count in range(max_failures + 1))
    return patterns * len(context.values_domain) ** n


def count_adversaries(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
) -> int:
    """The size of the restricted adversary space (by direct counting)."""
    return sum(
        1
        for _ in enumerate_adversaries(
            context, max_crash_round, receiver_policy, max_failures
        )
    )


# ------------------------------------------------------------ orbit streams
@dataclass(frozen=True)
class AdversaryOrbit:
    """One process-renaming orbit of a restricted adversary space.

    Attributes
    ----------
    representative:
        The canonical orbit representative (itself a member of the space —
        every enumeration restriction is renaming-invariant, so the spaces
        are closed under the group action).
    size:
        The number of distinct adversaries in the orbit, which is exactly the
        number of space members the representative stands for.
    certificate:
        The permutation ``π`` with ``representative = π · first member``,
        where *first member* is the first orbit member the underlying
        enumeration produced; decision times and views lift back through it.
    """

    representative: Adversary
    size: int
    certificate: Tuple[int, ...]


def enumerate_orbits(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[AdversaryOrbit]:
    """One :class:`AdversaryOrbit` per process-renaming orbit of the space.

    Lazily streams :func:`enumerate_adversaries` through canonical-form
    hashing — the full space is never materialised, only the set of canonical
    keys — and yields each orbit the first time it is met, with its exact
    size from the orbit–stabiliser theorem
    (:func:`repro.symmetry.adversary_orbit_size`; valid because the
    restricted spaces are closed under renaming).  The orbits partition the
    space: ``sum(orbit.size) == count_adversaries(...)`` under the same
    restrictions.  ``limit`` caps the number of *orbits* yielded (a smoke-run
    device, like the adversary-level ``limit``).
    """
    from ..symmetry import adversary_orbit_size, canonical_adversary

    if limit is not None and limit <= 0:
        return
    produced = 0
    seen = set()
    # One pattern-canonicalisation per distinct failure pattern: the
    # enumeration iterates input vectors in the inner loop, so the cache
    # amortises the graph search across every vector sharing the pattern.
    pattern_cache: dict = {}
    for adversary in enumerate_adversaries(
        context, max_crash_round, receiver_policy, max_failures
    ):
        canonical = canonical_adversary(adversary, pattern_cache=pattern_cache)
        if canonical.key in seen:
            continue
        seen.add(canonical.key)
        yield AdversaryOrbit(
            canonical.representative,
            adversary_orbit_size(canonical.representative),
            canonical.permutation,
        )
        produced += 1
        if limit is not None and produced >= limit:
            return


def count_orbits(
    context: Context,
    max_crash_round: Optional[int] = None,
    receiver_policy: str = "canonical",
    max_failures: Optional[int] = None,
) -> int:
    """The number of process-renaming orbits of the restricted space.

    Counts through the lazy dedup front only — no orbit sizes are computed,
    which skips one automorphism-kernel backtrack per orbit relative to
    draining :func:`enumerate_orbits`.
    """
    from ..symmetry import iter_orbit_representatives

    return sum(
        1
        for _ in iter_orbit_representatives(
            enumerate_adversaries(context, max_crash_round, receiver_policy, max_failures)
        )
    )
