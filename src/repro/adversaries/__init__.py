"""Adversary construction: random generators, the paper's figures, Lemma 2 surgery, enumeration."""

from .enumeration import (
    AdversaryOrbit,
    count_adversaries,
    count_orbits,
    enumerate_adversaries,
    enumerate_failure_patterns,
    enumerate_input_vectors,
    enumerate_orbits,
)
from .generators import (
    AdversaryGenerator,
    block_crash_adversary,
    crash_chain_adversary,
    crash_chain_events,
    failure_free_adversaries,
)
from .scenarios import Scenario, figure1_scenario, figure2_scenario, figure4_scenario
from .surgery import SurgeryCheck, SurgeryResult, lemma2_surgery, verify_surgery

__all__ = [
    "AdversaryGenerator",
    "AdversaryOrbit",
    "Scenario",
    "SurgeryCheck",
    "SurgeryResult",
    "block_crash_adversary",
    "count_adversaries",
    "count_orbits",
    "crash_chain_adversary",
    "crash_chain_events",
    "enumerate_adversaries",
    "enumerate_failure_patterns",
    "enumerate_input_vectors",
    "enumerate_orbits",
    "failure_free_adversaries",
    "figure1_scenario",
    "figure2_scenario",
    "figure4_scenario",
    "lemma2_surgery",
    "verify_surgery",
]
