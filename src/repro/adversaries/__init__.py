"""Adversary construction: random generators, the paper's figures, Lemma 2 surgery, enumeration."""

from .enumeration import (
    ORBIT_MODES,
    AdversaryOrbit,
    RestrictedSpace,
    constructive_orbit_stream,
    constructive_quotient,
    count_adversaries,
    count_orbits,
    enumerate_adversaries,
    enumerate_failure_patterns,
    enumerate_input_vectors,
    enumerate_orbits,
    estimate_adversary_count,
    pattern_and_orbit_counts,
)
from .generators import (
    AdversaryGenerator,
    block_crash_adversary,
    crash_chain_adversary,
    crash_chain_events,
    failure_free_adversaries,
)
from .scenarios import Scenario, figure1_scenario, figure2_scenario, figure4_scenario
from .surgery import SurgeryCheck, SurgeryResult, lemma2_surgery, verify_surgery

__all__ = [
    "ORBIT_MODES",
    "AdversaryGenerator",
    "AdversaryOrbit",
    "RestrictedSpace",
    "Scenario",
    "SurgeryCheck",
    "SurgeryResult",
    "block_crash_adversary",
    "constructive_orbit_stream",
    "constructive_quotient",
    "count_adversaries",
    "count_orbits",
    "crash_chain_adversary",
    "crash_chain_events",
    "enumerate_adversaries",
    "enumerate_failure_patterns",
    "enumerate_input_vectors",
    "enumerate_orbits",
    "estimate_adversary_count",
    "failure_free_adversaries",
    "pattern_and_orbit_counts",
    "figure1_scenario",
    "figure2_scenario",
    "figure4_scenario",
    "lemma2_surgery",
    "verify_surgery",
]
