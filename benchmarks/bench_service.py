"""SERVICE — job-queue overhead and warm re-submit latency.

The survey service (``repro.service``, ``docs/service.md``) wraps every
survey in queue machinery: a submit transaction, a lease claim, heartbeat
renewals, per-boundary event forwarding, and a conditional completion
commit.  This benchmark gates the two numbers that contract promises on
the n=5, t=2, k=2 constructive sweep (18 579 orbit representatives
standing for ~1.43M adversaries):

- **queue overhead < 10% CPU** (``SERVICE_MAX_OVERHEAD`` relaxes): a job
  executed through submit → claim → ``JobRunner`` → complete must cost
  under 10% extra CPU over the same ``resilient_check`` call made
  directly — with identical checkpoint and result stores on both legs, so
  the delta isolates the queue itself.  The machinery is a handful of
  SQLite transactions against a megabyte-scale fold, so the measured
  overhead is low single digits; the gate catches a regression that drags
  queue work into the per-batch (or worse, per-adversary) path;
- **warm re-submit < 1s wall** (``SERVICE_MAX_WARM_SECONDS`` relaxes): a
  fresh client session (new ``JobQueue`` handle on the same database — the
  service-restart model) re-submitting a completed spec must get the full
  result back in under a second.  The spec hash IS the job identity, so
  the submit lands on the finished row and the answer comes from the
  durable result column without re-folding anything.

The overhead gate is on CPU time (min of three interleaved rounds),
mirroring ``bench_store.py``: queue costs are CPU/syscall work and wall
clock on shared runners is noisier than the margin.  Identity is asserted,
not assumed: every round's job-produced report must equal the direct
leg's exactly — a queue that changed the answer would be a bug, not an
overhead.
"""

from __future__ import annotations

import os
import time as wall

import pytest

from repro.runtime import CheckpointStore, SupervisionPolicy, resilient_check
from repro.runtime.runner import _check_report_payload
from repro.service import JobQueue, JobRunner, job_id, normalize_spec
from repro.store import ResultStore

from conftest import print_table, record_benchmark

MAX_OVERHEAD = float(os.environ.get("SERVICE_MAX_OVERHEAD", "0.10"))
MAX_WARM_SECONDS = float(os.environ.get("SERVICE_MAX_WARM_SECONDS", "1.0"))

#: The survey under test: 18 579 orbit representatives (~1.43M members).
SPEC = normalize_spec({"kind": "sweep", "n": 5, "t": 2, "k": 2})
ROUNDS = 3


def direct_leg(root: str, round_index: int):
    """The library path: resilient_check with its own checkpoint/result stores."""
    from repro.service.specs import build_protocol, build_space

    store = CheckpointStore(os.path.join(root, f"direct-ck-{round_index}"))
    result_store = ResultStore(os.path.join(root, f"direct-rs-{round_index}.sqlite"))
    cpu0, wall0 = wall.process_time(), wall.perf_counter()
    outcome = resilient_check(
        build_protocol(SPEC),
        build_space(SPEC),
        SPEC["t"],
        symmetry=SPEC["symmetry"],
        engine=SPEC["engine"],
        store=store,
        result_store=result_store,
        policy=SupervisionPolicy(),
    )
    elapsed = (wall.process_time() - cpu0, wall.perf_counter() - wall0)
    result_store.close()
    assert outcome.completed
    return elapsed, _check_report_payload(outcome.value)


def job_leg(root: str, round_index: int):
    """The service path: submit → claim → JobRunner → conditional complete."""
    queue_path = os.path.join(root, f"queue-{round_index}.sqlite")
    workdir = os.path.join(root, f"job-work-{round_index}")
    jid = job_id(SPEC)
    with JobQueue(queue_path) as queue:
        cpu0, wall0 = wall.process_time(), wall.perf_counter()
        queue.submit(jid, SPEC)
        outcome = JobRunner(queue, workdir).run_once()
        elapsed = (wall.process_time() - cpu0, wall.perf_counter() - wall0)
        assert outcome == {"job": jid, "outcome": "done"}
        job = queue.job(jid)
    return elapsed, job["result"], queue_path


def warm_resubmit_leg(queue_path: str):
    """A fresh client session re-submits the finished spec and reads the result."""
    jid = job_id(SPEC)
    cpu0, wall0 = wall.process_time(), wall.perf_counter()
    with JobQueue(queue_path) as queue:
        job = queue.submit(jid, SPEC)
    elapsed = (wall.process_time() - cpu0, wall.perf_counter() - wall0)
    assert job["state"] == "done" and not job["created"] and not job["requeued"]
    assert job["result"]["ok"]
    return elapsed


def run_legs(root: str):
    direct_times, job_times, warm_times = [], [], []
    direct_payload = job_result = None
    for round_index in range(ROUNDS):
        direct_time, direct_payload = direct_leg(root, round_index)
        direct_times.append(direct_time)
        job_time, job_result, queue_path = job_leg(root, round_index)
        job_times.append(job_time)
        # The queue must change when work happens, never what is computed.
        assert job_result["ok"]
        assert job_result["report"] == direct_payload
        warm_times.append(warm_resubmit_leg(queue_path))
    return direct_times, job_times, warm_times, direct_payload


@pytest.mark.benchmark(group="service")
def test_service_overhead_and_warm_resubmit(benchmark, tmp_path):
    direct_times, job_times, warm_times, payload = benchmark.pedantic(
        lambda: run_legs(str(tmp_path)), rounds=1, iterations=1
    )
    direct_cpu = min(cpu for cpu, _ in direct_times)
    job_cpu = min(cpu for cpu, _ in job_times)
    warm_wall = min(elapsed for _, elapsed in warm_times)
    overhead = (job_cpu - direct_cpu) / direct_cpu
    print_table(
        f"SERVICE — n={SPEC['n']}, t={SPEC['t']}, k={SPEC['k']} constructive "
        f"sweep: direct vs queued vs warm re-submit (best of {ROUNDS})",
        ["leg", "cpu (s)", "wall (s)", "runs checked"],
        [
            (
                "direct resilient_check",
                f"{direct_cpu:.3f}",
                f"{min(s for _, s in direct_times):.3f}",
                payload["runs_checked"],
            ),
            (
                "queued job (submit→claim→run→complete)",
                f"{job_cpu:.3f}",
                f"{min(s for _, s in job_times):.3f}",
                payload["runs_checked"],
            ),
            (
                "warm re-submit (fresh session)",
                f"{min(c for c, _ in warm_times):.5f}",
                f"{warm_wall:.5f}",
                "0 (answered from the job row)",
            ),
        ],
    )
    print(
        f"\nqueue overhead (cpu): {overhead * 100:+.2f}% "
        f"(gate: <= {MAX_OVERHEAD * 100:.0f}%)"
        f"\nwarm re-submit (wall): {warm_wall:.4f}s "
        f"(gate: < {MAX_WARM_SECONDS:.1f}s)"
    )
    record_benchmark(
        "service",
        {
            "max_overhead_gate": MAX_OVERHEAD,
            "max_warm_seconds_gate": MAX_WARM_SECONDS,
            "n": SPEC["n"],
            "t": SPEC["t"],
            "k": SPEC["k"],
            "symmetry": SPEC["symmetry"],
            "runs_checked": payload["runs_checked"],
            "direct_cpu_seconds": direct_cpu,
            "job_cpu_seconds": job_cpu,
            "overhead_fraction": overhead,
            "warm_resubmit_wall_seconds": warm_wall,
        },
    )
    assert overhead <= MAX_OVERHEAD, (
        f"queued execution adds {overhead * 100:.2f}% CPU over the direct "
        f"sweep ({job_cpu:.3f}s vs {direct_cpu:.3f}s); gate is "
        f"{MAX_OVERHEAD * 100:.0f}%"
    )
    assert warm_wall < MAX_WARM_SECONDS, (
        f"warm re-submit took {warm_wall:.3f}s wall; a completed spec must "
        f"answer from the job row in under {MAX_WARM_SECONDS:.1f}s"
    )
