"""DOM — the domination claims: the paper's protocols beat the prior literature.

Three comparisons, each over the same adversary ensembles:

* Optmin[k] vs FloodMin and the nonuniform new-failure-rule protocol
  (Optmin must dominate both, strictly on the ensemble);
* u-Pmin[k] vs FloodMin and the uniform new-failure-rule protocol;
* Opt0 vs classic early-stopping consensus (the [CGM14] claim that the paper
  builds on).

Reported per pair: mean/max rounds saved and the fraction of adversaries on
which the candidate is strictly faster — the "who wins, by what factor" shape
of the paper's comparison.
"""

from __future__ import annotations

import pytest

from repro import (
    EarlyDecidingKSet,
    EarlyStoppingConsensus,
    FloodMin,
    Opt0,
    OptMin,
    UPMin,
    UniformEarlyDecidingKSet,
)
from repro.adversaries import AdversaryGenerator, figure4_scenario
from repro.analysis import speedup_table
from repro.model import Context
from repro.verification import compare_protocols

from conftest import print_table


SAMPLES = 150


def run_comparisons():
    rows = []

    kset_context = Context(n=8, t=5, k=2)
    kset_adversaries = AdversaryGenerator(kset_context, seed=1).sample(SAMPLES)
    consensus_context = Context(n=6, t=4, k=1, max_value=1)
    consensus_adversaries = AdversaryGenerator(consensus_context, seed=2).sample(SAMPLES)
    fig4 = figure4_scenario(k=2, rounds=5)

    comparisons = [
        ("Optmin[2]", OptMin(2), FloodMin(2), kset_adversaries, kset_context.t),
        ("Optmin[2]", OptMin(2), EarlyDecidingKSet(2), kset_adversaries, kset_context.t),
        ("u-Pmin[2]", UPMin(2), FloodMin(2), kset_adversaries, kset_context.t),
        ("u-Pmin[2]", UPMin(2), UniformEarlyDecidingKSet(2), kset_adversaries, kset_context.t),
        ("Opt0", Opt0(), EarlyStoppingConsensus(), consensus_adversaries, consensus_context.t),
        ("u-Pmin[2] (fig4)", UPMin(2), UniformEarlyDecidingKSet(2), [fig4.adversary], fig4.context.t),
    ]
    for label, candidate, reference, adversaries, t in comparisons:
        report = compare_protocols(candidate, reference, adversaries, t)
        speedup = speedup_table(candidate, [reference], adversaries, t)[reference.name]
        rows.append(
            (
                label,
                reference.name,
                report.dominates,
                report.strictly_dominates,
                f"{speedup['mean_rounds_saved']:.2f}",
                int(speedup["max_rounds_saved"]),
                f"{speedup['fraction_strictly_faster']:.2f}",
            )
        )
    return rows


@pytest.mark.benchmark(group="dom")
def test_domination_of_prior_protocols(benchmark):
    rows = benchmark(run_comparisons)
    print_table(
        "DOM — domination of the prior protocols (rounds saved on the last correct decision)",
        ["candidate", "reference", "dominates", "strictly", "mean saved", "max saved", "frac faster"],
        rows,
    )
    for label, _reference, dominates, strictly, _mean, max_saved, _frac in rows:
        assert dominates
        # Every candidate is strictly better somewhere on its ensemble.
        assert strictly
        assert max_saved >= 1
