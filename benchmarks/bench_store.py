"""STORE — durable result store: warm-census speedup and cold write overhead.

The result store (``repro.store``, ``docs/store.md``) memoises a survey's
verdicts across runs; this benchmark gates its two contract numbers on the
flagship n=6, k=2, m=2 census (the 5316-vertex / 32298-facet complex of
``bench_prop2_connectivity.py``):

- **warm census speedup >= 3x** (``STORE_MIN_SPEEDUP`` relaxes): a repeat
  census against a populated store must beat the storeless census by at
  least 3x CPU.  The warm path answers from the whole-row memo tier without
  grouping a single vertex — the measured number is hundreds-of-x, the gate
  guards the *tier* (a regression to per-class reads alone caps below 2x,
  because class grouping dominates the storeless census at this scale);
- **cold write overhead < 5% CPU** (``STORE_MAX_OVERHEAD`` relaxes): the
  store-populating first run must cost under 5% extra CPU over the
  storeless *survey* — build plus census, which is what a cold run pays
  end to end.  The complex build dominates a cold survey and touches the
  store not at all, so the gate bounds the real user-facing cost of
  leaving ``--store`` always on.

The gates are on CPU time (min of three interleaved rounds), mirroring
``bench_resilience.py``: the costs being resolved — key serialisation,
SHA-256 digests, SQLite commits — are CPU/syscall work, and wall clock on
shared runners is noisier than the margins.  Identity is asserted, not
assumed: every round's cold and warm census rows must equal the storeless
round's exactly — a store that changed the answer would be a bug, not a
speedup.
"""

from __future__ import annotations

import os
import time as wall

import pytest

from repro.model import Context
from repro.runtime import resilient_census
from repro.store import ResultStore
from repro.topology import build_restricted_complex

from conftest import print_table, record_benchmark

MIN_SPEEDUP = float(os.environ.get("STORE_MIN_SPEEDUP", "3"))
MAX_OVERHEAD = float(os.environ.get("STORE_MAX_OVERHEAD", "0.05"))

#: The flagship PROP2 case: n=6, k=2, m=2 — ~260k adversaries, 5316
#: vertices, 32298 facets, 35 star-isomorphism classes.
CONTEXT = Context(n=6, t=5, k=2)
TIME = 2
ROUNDS = 3


def run_legs(tmp_path):
    """Build once, then interleaved storeless/cold/warm census rounds."""
    cpu0, wall0 = wall.process_time(), wall.perf_counter()
    pc = build_restricted_complex(
        CONTEXT, time=TIME, max_crashes_per_round=CONTEXT.k
    )
    build_cpu, build_wall = wall.process_time() - cpu0, wall.perf_counter() - wall0

    base_times, cold_times, warm_times = [], [], []
    base = cold = warm = None
    populated = {}
    for round_index in range(ROUNDS):
        cpu0, wall0 = wall.process_time(), wall.perf_counter()
        base = resilient_census(pc, CONTEXT.k, symmetry="quotient")
        base_times.append((wall.process_time() - cpu0, wall.perf_counter() - wall0))

        path = os.path.join(str(tmp_path), f"store-{round_index}.sqlite")
        cold_store = ResultStore(path)
        cpu0, wall0 = wall.process_time(), wall.perf_counter()
        cold = resilient_census(
            pc, CONTEXT.k, symmetry="quotient", result_store=cold_store
        )
        cold_times.append((wall.process_time() - cpu0, wall.perf_counter() - wall0))
        populated = cold_store.counts()["kinds"]
        cold_store.close()

        warm_store = ResultStore(path)
        cpu0, wall0 = wall.process_time(), wall.perf_counter()
        warm = resilient_census(
            pc, CONTEXT.k, symmetry="quotient", result_store=warm_store
        )
        warm_times.append((wall.process_time() - cpu0, wall.perf_counter() - wall0))

        # The store must change when work happens, never what is computed:
        # byte-identical census rows, every round.
        assert cold.value.row == base.value.row == warm.value.row
        assert cold.value.classes == base.value.classes == warm.value.classes
        # The warm run was served by the whole-row tier: one read, no
        # grouping, no homology.
        assert warm_store.hits == 1 and warm_store.misses == 0
        assert warm.value.homology_runs == 0
        warm_store.close()

    # The cold run actually populated every tier.
    assert populated["census_class"] == base.value.classes
    assert populated["profile"] == base.value.homology_runs
    assert populated["census_row"] == 1
    return (build_cpu, build_wall), base_times, cold_times, warm_times, base.value


@pytest.mark.benchmark(group="store")
def test_store_speedup_and_overhead(benchmark, tmp_path):
    build, base_times, cold_times, warm_times, census = benchmark.pedantic(
        lambda: run_legs(tmp_path), rounds=1, iterations=1
    )
    build_cpu, build_wall = build
    base_cpu = min(cpu for cpu, _ in base_times)
    cold_cpu = min(cpu for cpu, _ in cold_times)
    warm_cpu = min(cpu for cpu, _ in warm_times)
    speedup = base_cpu / warm_cpu
    overhead = (cold_cpu - base_cpu) / (build_cpu + base_cpu)
    print_table(
        f"STORE — n={CONTEXT.n}, k={CONTEXT.k}, m={TIME} census: storeless vs "
        f"cold vs warm store (best of {ROUNDS})",
        ["leg", "cpu (s)", "wall (s)", "classes", "homology runs"],
        [
            ("build (shared)", f"{build_cpu:.3f}", f"{build_wall:.3f}", "-", "-"),
            (
                "storeless",
                f"{base_cpu:.4f}",
                f"{min(s for _, s in base_times):.4f}",
                census.classes,
                census.homology_runs,
            ),
            (
                "cold store",
                f"{cold_cpu:.4f}",
                f"{min(s for _, s in cold_times):.4f}",
                census.classes,
                census.homology_runs,
            ),
            (
                "warm store",
                f"{warm_cpu:.5f}",
                f"{min(s for _, s in warm_times):.5f}",
                census.classes,
                0,
            ),
        ],
    )
    print(
        f"\nwarm census speedup (cpu): {speedup:.0f}x (gate: >= {MIN_SPEEDUP:.0f}x)"
        f"\ncold survey overhead (cpu): {overhead * 100:+.2f}% "
        f"(gate: <= {MAX_OVERHEAD * 100:.0f}%)"
    )
    record_benchmark(
        "store",
        {
            "min_speedup_gate": MIN_SPEEDUP,
            "max_overhead_gate": MAX_OVERHEAD,
            "n": CONTEXT.n,
            "k": CONTEXT.k,
            "m": TIME,
            "classes": census.classes,
            "homology_runs": census.homology_runs,
            "build_cpu_seconds": build_cpu,
            "base_cpu_seconds": base_cpu,
            "cold_cpu_seconds": cold_cpu,
            "warm_cpu_seconds": warm_cpu,
            "overhead_fraction": overhead,
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm census is only {speedup:.2f}x faster than storeless "
        f"({warm_cpu:.5f}s vs {base_cpu:.4f}s cpu); gate is {MIN_SPEEDUP:.0f}x"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"cold store run adds {overhead * 100:.2f}% CPU over the storeless "
        f"survey ({cold_cpu:.4f}s vs {base_cpu:.4f}s census on a "
        f"{build_cpu:.1f}s build); gate is {MAX_OVERHEAD * 100:.0f}%"
    )
