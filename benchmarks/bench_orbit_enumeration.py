"""ORBITGEN — constructive orbit generation vs the hash-dedup oracle.

The n=6, t=2, k=2, max_crash_round=2 canonical space has 2,205,225 members
but only 8,011 process-renaming orbits.  The retained oracle
(:func:`repro.adversaries.enumerate_orbits` with ``symmetry="dedup"``)
reaches them by streaming every member through canonical-form hashing — cost
and memory proportional to the *space*.  The constructive path
(``symmetry="constructive"``, the default) *generates* one object per orbit:
canonical failure patterns by canonical augmentation (McKay orderly
generation) and, per pattern, input vectors up to the pattern's factored
stabiliser — cost proportional to the number of *orbits*, memory bounded by
the augmentation depth, and orbit sizes in closed form.

This benchmark runs both paths on the shared cases, asserts the
representative→orbit-size maps are **identical** and that each path's sizes
partition the space (``sum(sizes) == estimate_adversary_count(...)``), and
gates the constructive path at ``>= 3x`` over dedup on the n=6 case
(``ORBIT_ENUMERATION_MIN_SPEEDUP`` lowers the gate on noisy shared runners;
the measured number is recorded to ``BENCH_orbit_enumeration.json``).

A second, ungated section is the frontier smoke: the n=7, t=2, k=2,
max_crash_round=2 space (12,004,443 members, 11,856 orbits) is generated
constructively in well under a second — the dedup oracle extrapolates to
minutes on the same space and is not run (that is the point: the frontier
case exists *because* per-member work is no longer paid).
"""

from __future__ import annotations

import os
import time as wall

import pytest

from repro.adversaries import (
    enumerate_orbits,
    estimate_adversary_count,
    pattern_and_orbit_counts,
)
from repro.model import Context

from conftest import print_table, record_benchmark


CASES = [
    # (n, t, max_crash_round, gated)
    (4, 2, 2, False),
    (5, 2, 2, False),
    # The acceptance case: 2,205,225 members, 8,011 orbits.
    (6, 2, 2, True),
]

MIN_SPEEDUP = float(os.environ.get("ORBIT_ENUMERATION_MIN_SPEEDUP", "3.0"))

#: The frontier smoke case (constructive only — dedup cannot finish in a
#: benchmark budget; its cost is extrapolated from the member count).
FRONTIER = (7, 2, 2)

RESTRICTIONS = dict(receiver_policy="canonical", max_failures=None)


def run_cases():
    """Per case: both orbit streams, identity checks, wall times."""
    results = []
    for n, t, max_crash_round, gated in CASES:
        context = Context(n=n, t=t, k=2)
        members = estimate_adversary_count(
            context, max_crash_round=max_crash_round, **RESTRICTIONS
        )

        start = wall.perf_counter()
        constructive = {
            orbit.representative: orbit.size
            for orbit in enumerate_orbits(
                context,
                max_crash_round=max_crash_round,
                symmetry="constructive",
                **RESTRICTIONS,
            )
        }
        constructive_seconds = wall.perf_counter() - start

        start = wall.perf_counter()
        dedup = {
            orbit.representative: orbit.size
            for orbit in enumerate_orbits(
                context,
                max_crash_round=max_crash_round,
                symmetry="dedup",
                **RESTRICTIONS,
            )
        }
        dedup_seconds = wall.perf_counter() - start

        # The acceptance identities: same representatives with the same orbit
        # sizes, and the sizes partition the space exactly.
        assert constructive == dedup, (n, t, max_crash_round)
        assert sum(constructive.values()) == members, (n, t, max_crash_round)
        results.append(
            {
                "n": n,
                "t": t,
                "max_crash_round": max_crash_round,
                "gated": gated,
                "members": members,
                "orbits": len(constructive),
                "constructive_seconds": constructive_seconds,
                "dedup_seconds": dedup_seconds,
                "speedup": dedup_seconds / constructive_seconds,
            }
        )
    return results


def run_frontier():
    """The n=7 smoke row: constructive only, partition-sum verified."""
    n, t, max_crash_round = FRONTIER
    context = Context(n=n, t=t, k=2)
    members = estimate_adversary_count(
        context, max_crash_round=max_crash_round, **RESTRICTIONS
    )

    start = wall.perf_counter()
    patterns, orbits = pattern_and_orbit_counts(
        context, max_crash_round=max_crash_round, **RESTRICTIONS
    )
    count_seconds = wall.perf_counter() - start

    start = wall.perf_counter()
    total = 0
    generated = 0
    for orbit in enumerate_orbits(
        context, max_crash_round=max_crash_round, **RESTRICTIONS
    ):
        total += orbit.size
        generated += 1
    stream_seconds = wall.perf_counter() - start

    assert generated == orbits
    assert total == members, "orbit sizes must partition the n=7 space"
    # Dedup pays one canonicalisation per member; its per-member rate is
    # taken from the gated n=6 case at assembly time (see the test body).
    return {
        "n": n,
        "t": t,
        "max_crash_round": max_crash_round,
        "members": members,
        "pattern_orbits": patterns,
        "orbits": orbits,
        "count_seconds": count_seconds,
        "stream_seconds": stream_seconds,
    }


@pytest.mark.benchmark(group="orbit-enumeration")
def test_orbit_enumeration_speedup(benchmark):
    results, frontier = benchmark.pedantic(
        lambda: (run_cases(), run_frontier()), rounds=1, iterations=1
    )
    gated = next(r for r in results if r["gated"])
    # Extrapolate the oracle's cost on the frontier from its measured
    # per-member rate on the gated case (dedup work is linear in members).
    rate = gated["dedup_seconds"] / gated["members"]
    frontier["dedup_extrapolated_seconds"] = rate * frontier["members"]
    print_table(
        "ORBITGEN — orbit enumeration: hash-dedup oracle vs constructive generation",
        ["n", "t", "mcr", "members", "orbits", "dedup s", "constructive s", "speedup"],
        [
            (
                r["n"],
                r["t"],
                r["max_crash_round"],
                f"{r['members']:,}",
                f"{r['orbits']:,}",
                f"{r['dedup_seconds']:.3f}",
                f"{r['constructive_seconds']:.3f}",
                f"{r['speedup']:.1f}x",
            )
            for r in results
        ],
    )
    print(
        f"\nfrontier smoke (n={frontier['n']}, t={frontier['t']}, "
        f"mcr={frontier['max_crash_round']}): {frontier['members']:,} members, "
        f"{frontier['pattern_orbits']} pattern orbits, {frontier['orbits']:,} orbits — "
        f"counted in {frontier['count_seconds']:.2f}s, "
        f"generated in {frontier['stream_seconds']:.2f}s "
        f"(dedup extrapolates to ~{frontier['dedup_extrapolated_seconds']:.0f}s)"
    )
    record_benchmark(
        "orbit_enumeration",
        {
            "min_speedup_gate": MIN_SPEEDUP,
            "results": results,
            "frontier": frontier,
        },
    )
    for r in results:
        # Generation must beat per-member hashing wherever orbits << members.
        if r["gated"]:
            assert r["speedup"] >= MIN_SPEEDUP, (
                f"n={r['n']}, t={r['t']}, mcr={r['max_crash_round']}: constructive "
                f"enumeration fell below {MIN_SPEEDUP}x (dedup "
                f"{r['dedup_seconds']:.3f}s vs constructive "
                f"{r['constructive_seconds']:.3f}s)"
            )
    # The frontier must stay a smoke: orbits generated in interactive time
    # on a space whose oracle cost is minutes.
    assert frontier["stream_seconds"] < frontier["dedup_extrapolated_seconds"]
