"""SYMQ — symmetry-quotient Proposition 2 survey vs the exhaustive path.

The n=6, k=2, m=2 restricted protocol complex has 5316 vertices but only ~35
canonical vertex classes under process renaming: the exhaustive Proposition 2
census extracts and homology-probes one star per *vertex*, while the quotient
census (:func:`repro.topology.capacity_connectivity_census` with
``symmetry="quotient"``) groups vertices by
:func:`repro.symmetry.canonical_view_key`, probes one representative star per
class through the signature-keyed
:class:`repro.topology.ConnectivityCache`, and weights each verdict by the
class size.

This benchmark runs both paths over the shared complex (built once per case
— the build is identical either way and is reported separately), asserts the
orbit-weighted census rows are **identical** to the exhaustive rows, and
gates the quotient survey at ``>= 3x`` over the exhaustive survey on the
n=6, k=2, m=2 case (``SYMMETRY_QUOTIENT_MIN_SPEEDUP`` lowers the gate on
noisy shared runners; the measured number is recorded to
``BENCH_symmetry_quotient.json``).  Both paths are pinned to the ``bigint``
homology backend: the gate isolates the survey-engine collapse, and the
packed backend's cone shortcut (gated separately in
``bench_star_connectivity``) would otherwise make even the exhaustive sweep
near-free and the ratio meaningless.

A second, ungated section records the verification-layer quotient for
context: the exhaustive checker sweep vs ``symmetry="quotient"`` on a small
restricted space — identical reports (pinned by the differential tests),
modest batch-engine speedup that grows with ``n``.
"""

from __future__ import annotations

import os
import time as wall

import pytest

from repro.adversaries import enumerate_adversaries
from repro.core import OptMin
from repro.model import Context
from repro.topology import build_restricted_complex, capacity_connectivity_census
from repro.verification import check_protocol

from conftest import print_table, record_benchmark


CASES = [
    # (n, k, time, gated)
    (4, 2, 2, False),
    (6, 2, 1, False),
    # The acceptance case: 5316 vertices, ~35 canonical classes.
    (6, 2, 2, True),
]

MIN_SPEEDUP = float(os.environ.get("SYMMETRY_QUOTIENT_MIN_SPEEDUP", "3.0"))

#: The checker-context section (informational, not gated).
CHECKER_CONTEXT = Context(n=5, t=3, k=2)


def run_surveys():
    """Per case: census rows of both paths plus wall times and class counts."""
    results = []
    for n, k, m, gated in CASES:
        context = Context(n=n, t=n - 1, k=k)
        start = wall.perf_counter()
        pc = build_restricted_complex(context, time=m, max_crashes_per_round=k)
        build_seconds = wall.perf_counter() - start

        # Both paths run on the retained bigint backend: this benchmark gates
        # the *survey engine* (quotient grouping vs per-vertex sweeps), so it
        # measures against real per-star homology cost.  On the packed
        # backend the cone shortcut makes even the exhaustive sweep O(facets)
        # per star and the engines nearly tie — that regime is covered by
        # bench_star_connectivity / bench_prop2_connectivity instead.
        start = wall.perf_counter()
        exhaustive = capacity_connectivity_census(pc, k, symmetry="none", backend="bigint")
        exhaustive_seconds = wall.perf_counter() - start

        start = wall.perf_counter()
        quotient = capacity_connectivity_census(pc, k, symmetry="quotient", backend="bigint")
        quotient_seconds = wall.perf_counter() - start

        # The acceptance identity: orbit-weighted census rows must reproduce
        # the exhaustive census exactly, case by case.
        assert quotient.row == exhaustive.row, (n, k, m, quotient.row, exhaustive.row)
        results.append(
            {
                "n": n,
                "k": k,
                "m": m,
                "gated": gated,
                "vertices": exhaustive.vertices,
                "classes": quotient.classes,
                "homology_runs_exhaustive": exhaustive.homology_runs,
                "homology_runs_quotient": quotient.homology_runs,
                "build_seconds": build_seconds,
                "exhaustive_survey_seconds": exhaustive_seconds,
                "quotient_survey_seconds": quotient_seconds,
                "speedup": exhaustive_seconds / quotient_seconds,
                "census": exhaustive.row,
            }
        )
    return results


def run_checker_section():
    """The verification-layer quotient on a small restricted space (ungated)."""
    adversaries = list(
        enumerate_adversaries(
            CHECKER_CONTEXT, max_crash_round=2, receiver_policy="canonical", max_failures=2
        )
    )
    start = wall.perf_counter()
    exhaustive = check_protocol(OptMin(CHECKER_CONTEXT.k), adversaries, CHECKER_CONTEXT.t)
    exhaustive_seconds = wall.perf_counter() - start
    start = wall.perf_counter()
    quotient = check_protocol(
        OptMin(CHECKER_CONTEXT.k), adversaries, CHECKER_CONTEXT.t, symmetry="quotient"
    )
    quotient_seconds = wall.perf_counter() - start
    assert quotient.ok == exhaustive.ok
    assert quotient.runs_checked == exhaustive.runs_checked
    assert quotient.decision_time_histogram == exhaustive.decision_time_histogram
    return {
        "n": CHECKER_CONTEXT.n,
        "t": CHECKER_CONTEXT.t,
        "k": CHECKER_CONTEXT.k,
        "adversaries": len(adversaries),
        "exhaustive_seconds": exhaustive_seconds,
        "quotient_seconds": quotient_seconds,
        "speedup": exhaustive_seconds / quotient_seconds,
    }


@pytest.mark.benchmark(group="symmetry-quotient")
def test_symmetry_quotient_survey_speedup(benchmark):
    results, checker = benchmark.pedantic(
        lambda: (run_surveys(), run_checker_section()), rounds=1, iterations=1
    )
    print_table(
        "SYMQ — Proposition 2 survey: exhaustive per-vertex vs symmetry quotient",
        ["n", "k", "m", "vertices", "classes", "exhaustive s", "quotient s", "speedup"],
        [
            (
                r["n"],
                r["k"],
                r["m"],
                r["vertices"],
                r["classes"],
                f"{r['exhaustive_survey_seconds']:.3f}",
                f"{r['quotient_survey_seconds']:.3f}",
                f"{r['speedup']:.1f}x",
            )
            for r in results
        ],
    )
    print(
        f"\nchecker quotient (n={checker['n']}, {checker['adversaries']} adversaries): "
        f"exhaustive {checker['exhaustive_seconds']:.2f}s, "
        f"quotient {checker['quotient_seconds']:.2f}s "
        f"({checker['speedup']:.2f}x, identical report)"
    )
    record_benchmark(
        "symmetry_quotient",
        {
            "min_speedup_gate": MIN_SPEEDUP,
            "results": results,
            "checker_section": checker,
        },
    )
    for r in results:
        # The quotient must eliminate homology work, not merely tie: fewer
        # from-scratch profile computations than vertices on every case.
        assert r["homology_runs_quotient"] <= r["classes"] < r["vertices"]
        if r["gated"]:
            assert r["speedup"] >= MIN_SPEEDUP, (
                f"n={r['n']}, k={r['k']}, m={r['m']}: quotient survey fell below "
                f"{MIN_SPEEDUP}x (exhaustive {r['exhaustive_survey_seconds']:.3f}s vs "
                f"quotient {r['quotient_survey_seconds']:.3f}s)"
            )
