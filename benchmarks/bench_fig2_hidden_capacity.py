"""FIG2 — Fig. 2: hidden capacity k blocks Optmin[k]; its collapse releases the decision.

The figure's claim: ``k`` disjoint hidden chains keep ``HC<i, m> = k`` for as
long as they run, so the observer cannot decide under Optmin[k] (deciding
would risk k-Agreement, as the chains could be carrying all k low values);
one round after the chains end the capacity collapses and the observer
decides.  The benchmark sweeps ``k`` and the chain depth and reports the
observer's hidden-capacity profile and decision time.
"""

from __future__ import annotations

import pytest

from repro import OptMin
from repro.adversaries import figure2_scenario
from repro.core import OptMinWithExplanation
from repro.model import Run

from conftest import print_table


PARAMETERS = [(1, 2), (2, 2), (3, 2), (2, 3), (3, 3)]


def run_sweep():
    rows = []
    for k, depth in PARAMETERS:
        scenario = figure2_scenario(k=k, depth=depth, extra_processes=2)
        bare = Run(None, scenario.adversary, scenario.context.t, horizon=depth + 1)
        protocol = OptMinWithExplanation(k)
        run = Run(protocol, scenario.adversary, scenario.context.t)
        profile = [
            bare.view(scenario.observer, time).hidden_capacity() for time in range(depth + 2)
        ]
        rows.append(
            (
                k,
                depth,
                scenario.adversary.num_failures,
                profile,
                run.decision_time(scenario.observer),
                protocol.reasons.get(scenario.observer, "-"),
            )
        )
    return rows


@pytest.mark.benchmark(group="fig2")
def test_fig2_hidden_capacity_sweep(benchmark):
    rows = benchmark(run_sweep)
    print_table(
        "FIG2 — hidden-capacity profile of the observer and its Optmin[k] decision time",
        ["k", "depth", "f", "HC profile (t=0..)", "decision time", "trigger"],
        rows,
    )
    for k, depth, f, profile, decision_time, trigger in rows:
        # Capacity holds at >= k through the chain depth ...
        assert all(capacity >= k for capacity in profile[: depth + 1])
        # ... and collapses right after, releasing the decision (Prop. 1 tight).
        assert profile[depth + 1] < k
        assert decision_time == depth + 1 == f // k + 1
        assert trigger in {"hidden-capacity", "low"}
