"""RESIL — checkpointed survey overhead vs the plain constructive sweep.

The resilient runtime (``repro.runtime``) buys crash-safety by batching the
constructive orbit stream and flushing an atomic, checksummed checkpoint
after every batch.  That safety must be near-free, or nobody runs with it:
this benchmark sweeps the n=6, t=3, k=2 restricted space (90k+ orbit
representatives, 42M weighted runs, ~11 checkpoint flushes at the default
batch size) through both paths and gates the checkpointed path at ``<= 5%``
overhead over the plain :func:`repro.verification.check_protocol` sweep
(``RESILIENCE_MAX_OVERHEAD`` relaxes the gate on noisy shared runners; the
measured numbers are recorded to ``BENCH_resilience.json``).

The gate is on **CPU time** (min of three interleaved rounds): the batching
cost being gated — lost trie prefix sharing across batch boundaries, the
per-batch sweep setup, the serialization and double-``fsync`` of every
checkpoint — is all CPU/syscall work, and wall clock on shared runners
carries scheduler noise far larger than the 5%% being resolved.  Wall times
are recorded alongside for the perf history.

Identity is asserted, not assumed: the checkpointed run's serialized
``CheckReport`` must equal the plain run's byte for byte — resilience that
changed the answer would be a bug, not an overhead.
"""

from __future__ import annotations

import os
import time as wall

import pytest

from repro.adversaries.enumeration import RestrictedSpace
from repro.core import OptMin
from repro.model import Context
from repro.runtime import CheckpointStore, RunReport, canonical_json, resilient_check
from repro.runtime.runner import _check_report_payload
from repro.verification import check_protocol

from conftest import print_table, record_benchmark

MAX_OVERHEAD = float(os.environ.get("RESILIENCE_MAX_OVERHEAD", "0.05"))

#: The n=6 survey case: 90933 orbit representatives, 42M weighted runs.
CONTEXT = Context(n=6, t=3, k=2)
RESTRICTIONS = dict(max_crash_round=2, max_failures=3, receiver_policy="canonical")
ROUNDS = 3


def space() -> RestrictedSpace:
    return RestrictedSpace(CONTEXT, **RESTRICTIONS)


def run_legs(tmp_path):
    """Interleaved plain/checkpointed rounds; per-leg (cpu, wall) samples."""
    plain_times = []
    checkpointed_times = []
    plain_report = None
    outcome = None
    saves = 0
    for round_index in range(ROUNDS):
        cpu0, wall0 = wall.process_time(), wall.perf_counter()
        plain_report = check_protocol(
            OptMin(CONTEXT.k), space(), CONTEXT.t, symmetry="constructive"
        )
        plain_times.append((wall.process_time() - cpu0, wall.perf_counter() - wall0))

        directory = os.path.join(str(tmp_path), f"ck-{round_index}")
        events = RunReport()
        cpu0, wall0 = wall.process_time(), wall.perf_counter()
        outcome = resilient_check(
            OptMin(CONTEXT.k),
            space(),
            CONTEXT.t,
            symmetry="constructive",
            store=CheckpointStore(directory),
            report=events,
        )
        checkpointed_times.append((wall.process_time() - cpu0, wall.perf_counter() - wall0))
        saves = events.count("checkpoint_saved")
        assert outcome.completed

        # Crash-safety must be invisible in the product: byte-identical
        # serialized reports, every round.
        assert canonical_json(_check_report_payload(outcome.value)) == canonical_json(
            _check_report_payload(plain_report)
        )
    return plain_times, checkpointed_times, plain_report, outcome, saves


@pytest.mark.benchmark(group="resilience")
def test_checkpoint_overhead_is_negligible(benchmark, tmp_path):
    plain_times, checkpointed_times, plain_report, outcome, saves = benchmark.pedantic(
        lambda: run_legs(tmp_path), rounds=1, iterations=1
    )
    plain_cpu = min(cpu for cpu, _ in plain_times)
    checkpointed_cpu = min(cpu for cpu, _ in checkpointed_times)
    plain_wall = min(seconds for _, seconds in plain_times)
    checkpointed_wall = min(seconds for _, seconds in checkpointed_times)
    overhead = checkpointed_cpu / plain_cpu - 1.0
    print_table(
        f"RESIL — constructive n={CONTEXT.n} survey: plain vs checkpointed "
        f"(best of {ROUNDS})",
        ["path", "cpu (s)", "wall (s)", "orbits", "weighted runs", "checkpoints"],
        [
            (
                "plain",
                f"{plain_cpu:.3f}",
                f"{plain_wall:.3f}",
                outcome.cursor,
                plain_report.runs_checked,
                0,
            ),
            (
                "checkpointed",
                f"{checkpointed_cpu:.3f}",
                f"{checkpointed_wall:.3f}",
                outcome.cursor,
                outcome.value.runs_checked,
                saves,
            ),
        ],
    )
    print(
        f"\ncheckpoint overhead (cpu): {overhead * 100:+.1f}% "
        f"(gate: <= {MAX_OVERHEAD * 100:.0f}%)"
    )
    record_benchmark(
        "resilience",
        {
            "max_overhead_gate": MAX_OVERHEAD,
            "n": CONTEXT.n,
            "t": CONTEXT.t,
            "k": CONTEXT.k,
            "restrictions": {key: value for key, value in RESTRICTIONS.items()},
            "orbits": outcome.cursor,
            "weighted_runs": outcome.value.runs_checked,
            "checkpoint_saves": saves,
            "plain_cpu_seconds": plain_cpu,
            "checkpointed_cpu_seconds": checkpointed_cpu,
            "plain_seconds": plain_wall,
            "checkpointed_seconds": checkpointed_wall,
            "overhead_fraction": overhead,
            # compare_bench convention: the trajectory leaf is a speedup-like
            # ratio (plain over checkpointed; ~1.0 when resilience is free).
            "speedup": plain_cpu / checkpointed_cpu,
        },
    )
    assert saves >= 3, f"expected several checkpoint flushes, got {saves}"
    assert overhead <= MAX_OVERHEAD, (
        f"checkpointed sweep is {overhead * 100:.1f}% slower than plain "
        f"({checkpointed_cpu:.3f}s vs {plain_cpu:.3f}s cpu); gate is "
        f"{MAX_OVERHEAD * 100:.0f}%"
    )
