"""FIG1 — Fig. 1: a hidden path delays deciding 1 in Opt0.

The figure's claim: as long as a hidden path w.r.t. ``<i, m>`` exists and
``i`` has not seen a 0, ``i`` cannot decide — so on the chain adversary of
Fig. 1 the observer decides exactly one round after the chain ends, while on
a failure-free run it decides at time 1.  The benchmark sweeps the chain
length and reports the observer's decision time under Opt0 and under the
classic early-stopping baseline.
"""

from __future__ import annotations

import pytest

from repro import EarlyStoppingConsensus, Opt0
from repro.adversaries import figure1_scenario
from repro.model import Run

from conftest import print_table


CHAIN_LENGTHS = [1, 2, 3, 4, 5]


def run_sweep():
    rows = []
    for length in CHAIN_LENGTHS:
        scenario = figure1_scenario(chain_length=length, extra_processes=2)
        opt0 = Run(Opt0(), scenario.adversary, scenario.context.t)
        baseline = Run(EarlyStoppingConsensus(), scenario.adversary, scenario.context.t)
        rows.append(
            (
                length,
                scenario.adversary.num_failures,
                opt0.decision_time(scenario.observer),
                baseline.decision_time(scenario.observer),
                opt0.last_decision_time(),
            )
        )
    return rows


@pytest.mark.benchmark(group="fig1")
def test_fig1_hidden_path_sweep(benchmark):
    rows = benchmark(run_sweep)
    print_table(
        "FIG1 — observer decision time vs. hidden-path length (Opt0 vs early-stopping consensus)",
        ["chain length m", "failures f", "Opt0 observer", "baseline observer", "Opt0 last decider"],
        rows,
    )
    for length, f, opt0_time, baseline_time, _last in rows:
        # The hidden path blocks the observer exactly until the chain ends.
        assert opt0_time == length + 1
        # Opt0 never loses to the early-stopping baseline.
        assert opt0_time <= baseline_time
        # The bound of Proposition 1 (k = 1): f + 1 rounds.
        assert opt0_time <= f + 1
