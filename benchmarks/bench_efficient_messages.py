"""APPE — Appendix E: the compact implementation sends O(n log n) bits per channel.

The benchmark sweeps the system size, runs the compact message discipline over
random adversaries, and reports the worst per-channel bit count against the
explicit ``O(n log n)`` budget, together with the fraction of nodes at which
the compact reconstruction's hidden capacity coincides exactly with the
full-information protocol's (it is never lower; see the module docstring of
``repro.efficient.compact``).
"""

from __future__ import annotations

import pytest

from repro.adversaries import AdversaryGenerator
from repro.efficient import CompactSimulation, compare_compact_to_fip, nlogn_bound
from repro.model import Context

from conftest import print_table


N_SWEEP = [4, 6, 8, 12, 16]
SAMPLES = 15


def run_sweep():
    rows = []
    for n in N_SWEEP:
        context = Context(n=n, t=max(1, n // 3), k=2)
        generator = AdversaryGenerator(context, seed=n)
        worst_bits = 0
        horizon = 0
        exact_nodes = 0
        total_nodes = 0
        for adversary in generator.sample(SAMPLES):
            simulation = CompactSimulation(adversary, context.t)
            worst_bits = max(worst_bits, simulation.max_bits_per_channel())
            horizon = max(horizon, simulation.horizon)
            comparison = compare_compact_to_fip(adversary, context.t)
            total_nodes += comparison.nodes_compared
            exact_nodes += comparison.nodes_compared - comparison.capacity_mismatches
            assert comparison.sound
        budget = nlogn_bound(n, horizon, max_value=2)
        rows.append(
            (
                n,
                context.t,
                worst_bits,
                budget,
                f"{worst_bits / budget:.2f}",
                f"{exact_nodes / total_nodes:.3f}",
            )
        )
    return rows


@pytest.mark.benchmark(group="appe")
def test_efficient_implementation_bits(benchmark):
    rows = benchmark(run_sweep)
    print_table(
        "APPE — worst per-channel bits of the compact implementation vs the O(n log n) budget",
        ["n", "t", "worst bits/channel", "budget", "ratio", "exact-capacity node fraction"],
        rows,
    )
    previous_ratio = None
    for _n, _t, bits, budget, ratio, exact_fraction in rows:
        assert bits <= budget
        assert float(exact_fraction) >= 0.95
        previous_ratio = ratio
