"""SWEEP — engineering benchmark: batch engine vs reference engine throughput.

Measures the prefix-sharing batch engine (:mod:`repro.engine`) against the
per-adversary reference ``Run`` on the workload the engine was built for:
exhaustive adversary sweeps of a small context (here n=5, t=2, k=2 — the
acceptance configuration of the engine).  Asserts both that the two engines
produce identical decisions and that the batch path is at least 3x faster;
the trie typically delivers well above that on enumeration-ordered streams,
so the assertion has a wide safety margin against timer noise.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import OptMin, Run, SweepRunner, UPMin
from repro.adversaries.enumeration import enumerate_adversaries
from repro.model import Context

from conftest import print_table, record_benchmark


CONTEXT = Context(n=5, t=2, k=2)
#: Exhaustive within the canonical-delivery, crash-round <= 2 restriction,
#: truncated so the (deliberately slow) reference pass stays benchmarkable.
SWEEP_LIMIT = 6000
#: Wall-clock ratios are noisy on shared runners (CPU steal, throttling);
#: CI lowers the gate via this env var while local/acceptance runs keep the
#: full 3x target.  Decision equality is always asserted regardless.
MIN_SPEEDUP = float(os.environ.get("SWEEP_ENGINE_MIN_SPEEDUP", "3.0"))


def _adversaries():
    return list(
        enumerate_adversaries(
            CONTEXT, max_crash_round=2, receiver_policy="canonical", limit=SWEEP_LIMIT
        )
    )


def _time_reference(protocol, adversaries, t):
    start = time.perf_counter()
    decisions = [Run(protocol, adversary, t).decisions() for adversary in adversaries]
    return decisions, time.perf_counter() - start


def _time_batch(runner, adversaries):
    start = time.perf_counter()
    decisions = [run.decisions() for run in runner.sweep(adversaries)]
    return decisions, time.perf_counter() - start


def run_comparison():
    """Returns (protocol name, adversary count, reference s, batch s, sharing) rows.

    Timings stay raw floats so the speedup gate never depends on display
    rounding; the table formats them at print time only.
    """
    adversaries = _adversaries()
    rows = []
    for protocol in (OptMin(CONTEXT.k), UPMin(CONTEXT.k)):
        runner = SweepRunner(protocol, CONTEXT.t)
        batch_decisions, batch_seconds = _time_batch(runner, adversaries)
        reference_decisions, reference_seconds = _time_reference(
            protocol, adversaries, CONTEXT.t
        )
        assert batch_decisions == reference_decisions
        rows.append(
            (
                protocol.name,
                len(adversaries),
                reference_seconds,
                batch_seconds,
                runner.last_report.sharing_factor,
            )
        )
    return rows


@pytest.mark.benchmark(group="sweep-engine")
def test_batch_engine_speedup(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        f"SWEEP — batch vs reference engine on exhaustive n={CONTEXT.n}, t={CONTEXT.t} sweeps",
        ["protocol", "adversaries", "reference s", "batch s", "speedup", "layer sharing"],
        [
            (name, count, f"{ref:.2f}", f"{batch:.2f}", f"{ref / batch:.1f}x", f"{share:.0f}x")
            for name, count, ref, batch, share in rows
        ],
    )
    record_benchmark(
        "sweep_engine",
        {
            "context": {"n": CONTEXT.n, "t": CONTEXT.t, "k": CONTEXT.k},
            "min_speedup_gate": MIN_SPEEDUP,
            "results": [
                {
                    "protocol": name,
                    "adversaries": count,
                    "reference_seconds": ref,
                    "batch_seconds": batch,
                    "speedup": ref / batch,
                    "layer_sharing": share,
                }
                for name, count, ref, batch, share in rows
            ],
        },
    )
    for name, _count, reference_seconds, batch_seconds, _sharing in rows:
        assert reference_seconds >= MIN_SPEEDUP * batch_seconds, (
            f"{name}: batch engine speedup fell below {MIN_SPEEDUP}x "
            f"(reference {reference_seconds:.3f}s vs batch {batch_seconds:.3f}s)"
        )
