"""PROP1 — Proposition 1: Optmin[k] decides by time ⌊f/k⌋ + 1.

The benchmark checks the bound over (i) random adversary ensembles for a grid
of (n, k, f) and (ii) the worst-case hidden-chain adversaries on which the
bound is tight, and reports the observed decision-time histogram against the
bound.  The whole grid runs on the batch sweep engine (:mod:`repro.engine`);
``tests/test_engine_differential.py`` pins that engine to the reference
``Run``, so the timed numbers stay comparable across engine changes.
"""

from __future__ import annotations

import pytest

from repro import OptMin, Run
from repro.adversaries import AdversaryGenerator, figure2_scenario
from repro.analysis import collect
from repro.model import Context
from repro.verification import check_protocol, proposition1_bound

from conftest import print_table


GRID = [(7, 2, 4), (7, 3, 6), (10, 2, 6), (10, 3, 6)]
SAMPLES = 80


def run_grid():
    rows = []
    for n, k, t in GRID:
        context = Context(n=n, t=t, k=k)
        generator = AdversaryGenerator(context, seed=n * 100 + k)
        adversaries = generator.sample(SAMPLES)
        stats = collect(
            [OptMin(k)],
            adversaries,
            context.t,
            bound_for=lambda protocol, adversary: proposition1_bound(k, adversary.num_failures),
            engine="batch",
        )["Optmin[k]"]
        violations = len(
            check_protocol(OptMin(k), adversaries[:20], context.t, engine="batch").violations
        )
        worst_case = figure2_scenario(k=k, depth=t // k)
        tight = Run(OptMin(k), worst_case.adversary, worst_case.context.t).last_decision_time()
        rows.append(
            (
                n,
                k,
                t,
                f"{stats.mean_time:.2f}",
                stats.worst_time,
                t // k + 1,
                stats.bound_violations + violations,
                tight,
            )
        )
    return rows


@pytest.mark.benchmark(group="prop1")
def test_prop1_worst_case_bound(benchmark):
    rows = benchmark(run_grid)
    print_table(
        "PROP1 — Optmin[k] decision times vs the ⌊f/k⌋+1 bound",
        ["n", "k", "t", "mean", "worst observed", "⌊t/k⌋+1", "violations", "tight chain run"],
        rows,
    )
    for _n, k, t, _mean, worst, bound, violations, tight in rows:
        assert violations == 0
        assert worst <= bound
        # The hidden-chain adversary realises the bound exactly.
        assert tight == t // k + 1
