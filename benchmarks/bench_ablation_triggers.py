"""ABLATE — ablation of the design choices behind Optmin[k]'s decision rule.

DESIGN.md calls out two load-bearing design choices:

1. the decision trigger is the *hidden capacity* rather than the per-round
   count of newly perceived failures used by the prior literature — this
   benchmark measures how often each of Optmin[k]'s two triggers ("low" vs
   "capacity < k") actually fires, and how many rounds the capacity trigger
   saves relative to the new-failure trigger on the same adversaries;
2. the full-information view summaries rather than the Appendix E compact
   state — the benchmark measures the decision-time cost of running Optmin[k]
   on top of the compact reconstruction (whose capacity estimate is
   conservative), i.e. what the O(n log n)-bit encoding gives up.
"""

from __future__ import annotations

import pytest

from repro import EarlyDecidingKSet, OptMin
from repro.adversaries import AdversaryGenerator, figure4_scenario
from repro.core import OptMinWithExplanation
from repro.efficient import CompactSimulation
from repro.model import Context, Run

from conftest import print_table


SAMPLES = 120


class CompactOptMin(OptMin):
    """Optmin[k] evaluated on the compact (Appendix E) state reconstruction.

    Decisions use the hidden capacity as reconstructed from compact messages,
    which can only be an over-estimate of the full-information capacity; the
    protocol therefore stays correct but may decide later.
    """

    name = "Optmin[k] on compact state"

    def __init__(self, k: int, simulation: CompactSimulation) -> None:
        super().__init__(k)
        self._simulation = simulation

    def decide(self, ctx):
        view = ctx.view
        if view.is_low(self.k):
            return view.min_value()
        try:
            capacity = self._simulation.hidden_capacity(ctx.process, ctx.time)
        except KeyError:
            capacity = view.hidden_capacity()
        if capacity < self.k:
            return view.min_value()
        return None


def run_ablation():
    context = Context(n=8, t=5, k=2)
    generator = AdversaryGenerator(context, seed=3)
    adversaries = generator.sample(SAMPLES, num_failures=context.t)
    # Add the all-high-input variants of the same failure patterns: there the
    # "low" trigger can never fire, so they isolate the hidden-capacity rule.
    adversaries += [
        adversary.with_values([context.k] * context.n) for adversary in adversaries[: SAMPLES // 2]
    ]
    fig4 = figure4_scenario(k=2, rounds=5)

    low_triggers = 0
    capacity_triggers = 0
    rounds_saved_vs_counting = 0
    compact_delay_nodes = 0
    total_decisions = 0

    for adversary in adversaries:
        instrumented = OptMinWithExplanation(2)
        optmin_run = Run(instrumented, adversary, context.t)
        counting_run = Run(EarlyDecidingKSet(2), adversary, context.t)
        compact_run = Run(
            CompactOptMin(2, CompactSimulation(adversary, context.t)), adversary, context.t
        )
        for process in range(context.n):
            ot = optmin_run.decision_time(process)
            if ot is None:
                continue
            total_decisions += 1
            if instrumented.reasons.get(process) == "low":
                low_triggers += 1
            else:
                capacity_triggers += 1
            bt = counting_run.decision_time(process)
            if bt is not None:
                rounds_saved_vs_counting += bt - ot
            ct = compact_run.decision_time(process)
            if ct is not None and ct > ot:
                compact_delay_nodes += 1

    fig4_optmin = Run(OptMin(2), fig4.adversary, fig4.context.t).last_decision_time()
    fig4_counting = Run(EarlyDecidingKSet(2), fig4.adversary, fig4.context.t).last_decision_time()

    return {
        "decisions": total_decisions,
        "low_triggers": low_triggers,
        "capacity_triggers": capacity_triggers,
        "rounds_saved_vs_counting": rounds_saved_vs_counting,
        "compact_delayed_decisions": compact_delay_nodes,
        "fig4_optmin": fig4_optmin,
        "fig4_counting": fig4_counting,
    }


@pytest.mark.benchmark(group="ablate")
def test_ablation_of_decision_triggers(benchmark):
    result = benchmark(run_ablation)
    print_table(
        "ABLATE — decision-trigger and state-representation ablation (k=2, n=8, t=5)",
        ["metric", "value"],
        [
            ("decisions observed", result["decisions"]),
            ("decided because low", result["low_triggers"]),
            ("decided because hidden capacity < k", result["capacity_triggers"]),
            ("total rounds saved vs new-failure counting", result["rounds_saved_vs_counting"]),
            ("decisions delayed by the compact state", result["compact_delayed_decisions"]),
            ("Fig. 4 (k=2): Optmin last decision", result["fig4_optmin"]),
            ("Fig. 4 (k=2): failure-counting last decision", result["fig4_counting"]),
        ],
    )
    # Both triggers carry real weight, the capacity rule never loses to the
    # counting rule, and on the crafted adversary it wins by a wide margin.
    assert result["low_triggers"] > 0
    assert result["capacity_triggers"] > 0
    assert result["rounds_saved_vs_counting"] >= 0
    assert result["fig4_optmin"] < result["fig4_counting"]
    # The compact encoding's conservatism costs at most a small fraction of decisions.
    assert result["compact_delayed_decisions"] <= result["decisions"] * 0.05
