"""FIG3 — Fig. 3 / Lemma 2: the constructive run surgery behind the unbeatability proof.

The proof's engine: at a node with hidden capacity ``c``, the witnesses can be
rewired into ``c`` disjoint crash chains carrying any ``c`` chosen values,
without the observer being able to tell.  The benchmark applies the surgery
across ``k`` and depth, verifies all of Lemma 2's guarantees, and then runs
the Lemma 3 confrontation (Optmin[k] stays correct on the surgered adversary
while the eager "beating attempt" violates k-Agreement).
"""

from __future__ import annotations

import pytest

from repro.adversaries import figure2_scenario, lemma2_surgery, verify_surgery
from repro.model import Run
from repro.verification import demonstrate_unbeatability_mechanism

from conftest import print_table


PARAMETERS = [(2, 2), (3, 2), (4, 2), (3, 3)]


def run_surgery_sweep():
    rows = []
    for k, depth in PARAMETERS:
        scenario = figure2_scenario(k=k, depth=depth)
        base = Run(None, scenario.adversary, scenario.context.t, horizon=depth)
        result = lemma2_surgery(base, scenario.observer, depth, list(range(k)))
        check = verify_surgery(base, result)
        mechanism = demonstrate_unbeatability_mechanism(k, depth)
        rows.append(
            (
                k,
                depth,
                check.observer_view_preserved,
                check.values_delivered and check.no_foreign_values,
                check.residual_capacity,
                len(mechanism["optmin_decided_values"]),
                len(mechanism["eager_decided_values"]),
            )
        )
    return rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_lemma2_surgery(benchmark):
    rows = benchmark(run_surgery_sweep)
    print_table(
        "FIG3 — Lemma 2 surgery guarantees and the Lemma 3 confrontation",
        [
            "k",
            "depth",
            "view preserved",
            "values routed",
            "residual HC >= k-1",
            "#values (Optmin)",
            "#values (eager attempt)",
        ],
        rows,
    )
    for k, _depth, preserved, routed, residual, optmin_values, eager_values in rows:
        assert preserved and routed and residual
        # Optmin stays within k values; the attempt to beat it decides k+1.
        assert optmin_values <= k
        assert eager_values == k + 1
