"""THM3 — Theorem 3: u-Pmin[k] decides by time min(⌊t/k⌋ + 1, ⌊f/k⌋ + 2).

The benchmark sweeps (n, k, t) with random adversaries stratified by the
number of failures f, and reports the worst observed decision time per f
against the theorem's bound.
"""

from __future__ import annotations

import pytest

from repro import UPMin
from repro.adversaries import AdversaryGenerator
from repro.model import Context, Run
from repro.verification import check_run_for_protocol, theorem3_bound

from conftest import print_table


GRID = [(7, 2, 4), (7, 3, 6), (9, 2, 6)]
SAMPLES_PER_F = 25


def run_grid():
    rows = []
    for n, k, t in GRID:
        context = Context(n=n, t=t, k=k)
        generator = AdversaryGenerator(context, seed=n * 31 + k)
        for f in range(0, t + 1, max(1, t // 3)):
            worst = 0
            violations = 0
            for adversary in generator.sample(SAMPLES_PER_F, num_failures=f):
                run = Run(UPMin(k), adversary, context.t)
                worst = max(worst, run.last_decision_time(correct_only=False) or 0)
                violations += len(check_run_for_protocol(run))
            rows.append((n, k, t, f, worst, theorem3_bound(k, t, f), violations))
    return rows


@pytest.mark.benchmark(group="thm3")
def test_thm3_uniform_bound(benchmark):
    rows = benchmark(run_grid)
    print_table(
        "THM3 — u-Pmin[k] worst decision time vs min(⌊t/k⌋+1, ⌊f/k⌋+2)",
        ["n", "k", "t", "f", "worst observed", "bound", "violations"],
        rows,
    )
    for _n, _k, _t, _f, worst, bound, violations in rows:
        assert violations == 0
        assert worst <= bound
