"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment from the paper (see
DESIGN.md §4 and EXPERIMENTS.md).  Conventions:

* each benchmark prints the paper-style rows/series it reproduces (captured
  with ``pytest benchmarks/ --benchmark-only -s`` or in the benchmark logs),
  and *asserts* the qualitative shape (who wins, by how much, where the
  crossover is);
* the timed portion (the ``benchmark(...)`` call) is the experiment's core
  computation, so ``--benchmark-only`` runs double as a performance record.
"""

from __future__ import annotations

import pytest

from repro.adversaries import AdversaryGenerator
from repro.model import Context


def print_table(title: str, headers, rows) -> None:
    """Print an aligned table (used by every benchmark for its paper-style output)."""
    from repro.analysis import format_table

    print()
    print(format_table(headers, rows, title=title))


@pytest.fixture
def small_context() -> Context:
    return Context(n=6, t=4, k=2)


@pytest.fixture
def generator(small_context: Context) -> AdversaryGenerator:
    return AdversaryGenerator(small_context, seed=20160523)
