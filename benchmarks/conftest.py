"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment from the paper (see
DESIGN.md §4 and EXPERIMENTS.md).  Conventions:

* each benchmark prints the paper-style rows/series it reproduces (captured
  with ``pytest benchmarks/ --benchmark-only -s`` or in the benchmark logs),
  and *asserts* the qualitative shape (who wins, by how much, where the
  crossover is);
* the timed portion (the ``benchmark(...)`` call) is the experiment's core
  computation, so ``--benchmark-only`` runs double as a performance record;
* engineering benchmarks additionally *record* their trajectory: each calls
  :func:`record_benchmark` to emit a machine-readable ``BENCH_<name>.json``
  (wall times, speedup vs the reference/baseline path, system size), so the
  perf history can be collected as CI artifacts instead of only being
  asserted against a floor.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys

import pytest

from repro.adversaries import AdversaryGenerator
from repro.model import Context


def print_table(title: str, headers, rows) -> None:
    """Print an aligned table (used by every benchmark for its paper-style output)."""
    from repro.analysis import format_table

    print()
    print(format_table(headers, rows, title=title))


def record_benchmark(name: str, payload: dict) -> str:
    """Write one benchmark's machine-readable record as ``BENCH_<name>.json``.

    ``payload`` carries the benchmark's own fields — by convention at least
    wall times in seconds, the realised speedup over the reference/baseline
    path, and the size of the swept system (adversaries / vertices / runs) —
    and is wrapped with the interpreter/platform stamp plus the process's
    peak RSS (``max_rss_kb``), so records from different runners stay
    comparable and memory regressions show up in the perf history alongside
    wall times.  (``compare_bench`` only diffs ``*_seconds`` / ``speedup``
    leaves, so the stamp fields never trip the baseline comparison.)  The
    destination directory defaults to the working directory and is
    overridden with ``BENCH_OUTPUT_DIR`` (the CI smoke job points that at
    its artifact directory).  Returns the path written.
    """
    directory = os.environ.get("BENCH_OUTPUT_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    # ru_maxrss is KiB on Linux but bytes on macOS.
    max_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        max_rss //= 1024
    record = {
        "benchmark": name,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[1:],
        "max_rss_kb": max_rss,
        **payload,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n[bench] recorded {path}")
    return path


@pytest.fixture
def small_context() -> Context:
    return Context(n=6, t=4, k=2)


@pytest.fixture
def generator(small_context: Context) -> AdversaryGenerator:
    return AdversaryGenerator(small_context, seed=20160523)
