"""FIG4 — Fig. 4: u-Pmin[k] decides at time 2 where all known protocols need ⌊t/k⌋ + 1.

The paper's headline for the uniform case.  The benchmark sweeps the number of
heavy rounds (⌊t/k⌋) of the Fig. 4 adversary and reports, for every protocol,
the time of the last correct decision; the gap between u-Pmin[k] and every
failure-counting protocol grows linearly with t.
"""

from __future__ import annotations

import pytest

from repro import EarlyDecidingKSet, FloodMin, OptMin, UPMin, UniformEarlyDecidingKSet
from repro.adversaries import figure4_scenario
from repro.model import Run

from conftest import print_table


K = 3
ROUND_SWEEP = [2, 3, 4, 6, 8]


def run_sweep():
    rows = []
    for rounds in ROUND_SWEEP:
        scenario = figure4_scenario(k=K, rounds=rounds)
        t = scenario.context.t
        entry = {"rounds": rounds, "t": t, "deadline": t // K + 1}
        for protocol in (
            UPMin(K),
            OptMin(K),
            UniformEarlyDecidingKSet(K),
            EarlyDecidingKSet(K),
            FloodMin(K),
        ):
            run = Run(protocol, scenario.adversary, t)
            entry[protocol.name] = run.last_decision_time()
        rows.append(entry)
    return rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_uniform_speedup(benchmark):
    rows = benchmark(run_sweep)
    print_table(
        f"FIG4 — last correct decision time on the Fig. 4 adversary (k={K})",
        ["⌊t/k⌋", "t", "deadline", "u-Pmin", "Optmin", "u-EarlyDec", "EarlyDec", "FloodMin"],
        [
            (
                row["rounds"],
                row["t"],
                row["deadline"],
                row["u-Pmin[k]"],
                row["Optmin[k]"],
                row["u-EarlyDeciding[k] (new-failure rule)"],
                row["EarlyDeciding[k] (new-failure rule)"],
                row["FloodMin"],
            )
            for row in rows
        ],
    )
    for row in rows:
        # u-Pmin decides at time 2 regardless of t ...
        assert row["u-Pmin[k]"] == 2
        # ... while every failure-counting protocol needs the full ⌊t/k⌋ + 1 rounds.
        for baseline in (
            "u-EarlyDeciding[k] (new-failure rule)",
            "EarlyDeciding[k] (new-failure rule)",
            "FloodMin",
        ):
            assert row[baseline] == row["deadline"] == row["rounds"] + 1
    # The margin grows with t (the paper: "beating them by a large margin").
    margins = [row["deadline"] - row["u-Pmin[k]"] for row in rows]
    assert margins == sorted(margins)
    assert margins[-1] >= 7
