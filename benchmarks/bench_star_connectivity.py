"""STARCONN — engineering benchmark: sparse vs dense per-star connectivity.

The Proposition 2 surveys probe ``connectivity_profile(star, max_q=k-1)`` on
the star complex of **every** vertex of a protocol complex.  The seed
homology path materialised the star's entire face lattice as frozensets and
recomputed the Betti numbers from scratch for every probed ``q``; the sparse
bitset kernel streams chain groups only up to dimension ``q+1`` (as integer
bit combinations, deduplicated across facets), reuses each boundary rank as
the next dimension's down-rank, and exits at the first non-vanishing Betti
number.

This benchmark runs the full per-star sweep on both paths — the sparse
kernel (:func:`repro.topology.connectivity_profile`) and the retained seed
algorithm (:func:`repro.topology.dense_connectivity_profile`) — over two
star families:

* the exhaustive n=4, t=2 restricted family at m=2 (the differential-test
  family of ``tests/test_homology_differential.py``);
* the n=6 one-round family, whose stars are wide enough that the dense
  path's full-lattice enumeration dominates.

The two sweeps must produce identical connectivity profiles — asserted
unconditionally — and the sparse sweep must be at least 3x faster (the
acceptance criterion of the kernel port).  Wall-clock ratios are noisy on
shared runners, so CI lowers the gate via ``STAR_CONNECTIVITY_MIN_SPEEDUP``
while local/acceptance runs keep the 3x target.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.model import Context
from repro.topology import (
    build_restricted_complex,
    connectivity_profile,
    dense_connectivity_profile,
)

from conftest import print_table, record_benchmark


CASES = [
    # (n, t, k, time); the first case is exactly the differential-test family
    # of tests/test_homology_differential.py, the second the n=6 one-round
    # family with the usual t = n - 1.
    (4, 2, 2, 2),
    (6, 5, 2, 1),
]
MIN_SPEEDUP = float(os.environ.get("STAR_CONNECTIVITY_MIN_SPEEDUP", "3.0"))


def run_sweeps():
    """(n, k, m, stars, sparse seconds, dense seconds) per case."""
    rows = []
    for n, t, k, m in CASES:
        context = Context(n=n, t=t, k=k)
        pc = build_restricted_complex(context, time=m, max_crashes_per_round=k)
        stars = [pc.complex.star(vertex) for vertex in pc.complex.vertices]

        start = time.perf_counter()
        sparse = [connectivity_profile(star, max_q=k - 1) for star in stars]
        sparse_seconds = time.perf_counter() - start

        start = time.perf_counter()
        dense = [dense_connectivity_profile(star, max_q=k - 1) for star in stars]
        dense_seconds = time.perf_counter() - start

        # The differential contract, embedded in the benchmark: the kernels
        # must agree on every star of the sweep.
        assert sparse == dense
        rows.append((n, k, m, len(stars), sparse_seconds, dense_seconds))
    return rows


@pytest.mark.benchmark(group="star-connectivity")
def test_sparse_star_connectivity_speedup(benchmark):
    rows = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    print_table(
        "STARCONN — per-star connectivity_profile sweep, sparse kernel vs dense path",
        ["n", "k", "m", "stars", "sparse s", "dense s", "speedup"],
        [
            (n, k, m, stars, f"{sparse:.3f}", f"{dense:.3f}", f"{dense / sparse:.1f}x")
            for n, k, m, stars, sparse, dense in rows
        ],
    )
    record_benchmark(
        "star_connectivity",
        {
            "min_speedup_gate": MIN_SPEEDUP,
            "results": [
                {
                    "n": n,
                    "k": k,
                    "m": m,
                    "stars": stars,
                    "sparse_seconds": sparse,
                    "dense_seconds": dense,
                    "speedup": dense / sparse,
                }
                for n, k, m, stars, sparse, dense in rows
            ],
        },
    )
    for n, k, m, _stars, sparse_seconds, dense_seconds in rows:
        assert dense_seconds >= MIN_SPEEDUP * sparse_seconds, (
            f"n={n}, k={k}, m={m}: sparse star sweep fell below {MIN_SPEEDUP}x "
            f"(dense {dense_seconds:.3f}s vs sparse {sparse_seconds:.3f}s)"
        )
