"""STARCONN — engineering benchmark: per-star connectivity across homology backends.

The Proposition 2 surveys probe ``connectivity_profile(star, max_q=k-1)`` on
the star complex of **every** vertex of a protocol complex.  Three backends
answer the same question:

* ``packed`` — the word-packed GF(2) kernel of :mod:`repro.topology.gf2`
  plus its structural shortcuts.  Star complexes are cones (the star's
  vertex is in every facet), so the survey's hot path is the O(facets)
  cone test on the global facet masks — no re-basing, no chain groups, no
  elimination;
* ``bigint`` — the previous sparse kernel: big-int chain-group masks,
  dict-pivot elimination, rank reuse (this PR's predecessor and first
  oracle);
* ``dense`` — the seed algorithm: full face-lattice enumeration over
  frozensets, one complete Betti recomputation per probed ``q``.

The benchmark sweeps every star of two families on all three backends,
asserts the profiles identical, and gates **packed >= 3x over bigint** (the
acceptance criterion of the packed-kernel port; the old bigint-vs-dense
ratio is reported alongside).  Wall-clock ratios are noisy on shared
runners, so CI lowers the gate via ``STAR_CONNECTIVITY_MIN_SPEEDUP`` while
local/acceptance runs keep the 3x target.

A second, ungated section reports the backends on *non-cone* spaces (whole
protocol complexes and spheres), where the packed path has no shortcut and
must run its packed elimination — the honest "no structural gift" number.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.model import Context
from repro.topology import (
    build_restricted_complex,
    connectivity_profile,
    reduced_betti_numbers,
    sphere_complex,
)

from conftest import print_table, record_benchmark


CASES = [
    # (n, t, k, time); the first case is exactly the differential-test family
    # of tests/test_homology_differential.py, the second the n=6 one-round
    # family with the usual t = n - 1.  Both gate packed >= 3x over bigint.
    (4, 2, 2, 2),
    (6, 5, 2, 1),
]
MIN_SPEEDUP = float(os.environ.get("STAR_CONNECTIVITY_MIN_SPEEDUP", "3.0"))

BACKENDS = ("packed", "bigint", "dense")


def run_sweeps():
    """Per case: star count plus the per-backend sweep seconds."""
    rows = []
    for n, t, k, m in CASES:
        context = Context(n=n, t=t, k=k)
        pc = build_restricted_complex(context, time=m, max_crashes_per_round=k)
        stars = [pc.complex.star(vertex) for vertex in pc.complex.vertices]

        profiles = {}
        seconds = {}
        for backend in BACKENDS:
            start = time.perf_counter()
            profiles[backend] = [
                connectivity_profile(star, max_q=k - 1, backend=backend)
                for star in stars
            ]
            seconds[backend] = time.perf_counter() - start

        # The differential contract, embedded in the benchmark: the backends
        # must agree on every star of the sweep.
        assert profiles["packed"] == profiles["bigint"] == profiles["dense"]
        rows.append((n, k, m, len(stars), seconds))
    return rows


def run_noncone_section():
    """Whole complexes and spheres: no cone apex, real packed elimination."""
    spaces = [
        ("P(n=4,m=2)", build_restricted_complex(Context(n=4, t=2, k=2), time=2).complex),
        ("S^3", sphere_complex(3)),
        ("S^4", sphere_complex(4)),
    ]
    rows = []
    for label, complex_ in spaces:
        betti = {}
        seconds = {}
        for backend in ("packed", "bigint"):
            start = time.perf_counter()
            betti[backend] = reduced_betti_numbers(complex_, backend=backend)
            seconds[backend] = time.perf_counter() - start
        assert betti["packed"] == betti["bigint"]
        rows.append((label, complex_.vertex_count, seconds))
    return rows


@pytest.mark.benchmark(group="star-connectivity")
def test_packed_star_connectivity_speedup(benchmark):
    rows, noncone = benchmark.pedantic(
        lambda: (run_sweeps(), run_noncone_section()), rounds=1, iterations=1
    )
    print_table(
        "STARCONN — per-star connectivity_profile sweep: packed vs bigint vs dense",
        ["n", "k", "m", "stars", "packed s", "bigint s", "dense s", "vs bigint", "vs dense"],
        [
            (
                n,
                k,
                m,
                stars,
                f"{s['packed']:.4f}",
                f"{s['bigint']:.4f}",
                f"{s['dense']:.4f}",
                f"{s['bigint'] / s['packed']:.1f}x",
                f"{s['dense'] / s['packed']:.1f}x",
            )
            for n, k, m, stars, s in rows
        ],
    )
    print_table(
        "STARCONN — non-cone spaces (full Betti, no shortcut): packed vs bigint",
        ["space", "|V|", "packed s", "bigint s", "ratio"],
        [
            (
                label,
                vertices,
                f"{s['packed']:.4f}",
                f"{s['bigint']:.4f}",
                f"{s['bigint'] / s['packed']:.2f}x",
            )
            for label, vertices, s in noncone
        ],
    )
    record_benchmark(
        "star_connectivity",
        {
            "min_speedup_gate": MIN_SPEEDUP,
            "results": [
                {
                    "n": n,
                    "k": k,
                    "m": m,
                    "stars": stars,
                    "packed_seconds": s["packed"],
                    "bigint_seconds": s["bigint"],
                    "dense_seconds": s["dense"],
                    "speedup": s["bigint"] / s["packed"],
                    "speedup_vs_dense": s["dense"] / s["packed"],
                }
                for n, k, m, stars, s in rows
            ],
            "noncone": [
                {
                    "space": label,
                    "vertices": vertices,
                    "packed_seconds": s["packed"],
                    "bigint_seconds": s["bigint"],
                }
                for label, vertices, s in noncone
            ],
        },
    )
    for n, k, m, _stars, s in rows:
        assert s["bigint"] >= MIN_SPEEDUP * s["packed"], (
            f"n={n}, k={k}, m={m}: packed star sweep fell below {MIN_SPEEDUP}x over "
            f"bigint (bigint {s['bigint']:.4f}s vs packed {s['packed']:.4f}s)"
        )
