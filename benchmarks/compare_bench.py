"""Diff freshly emitted ``BENCH_*.json`` records against committed baselines.

The benchmarks assert qualitative gates (who wins, by at least how much) but
the *trajectory* — how each wall time moves commit over commit — was only
kept as CI artifacts.  This tool closes the loop: it loads every
``BENCH_<name>.json`` in a records directory, pairs it with the snapshot of
the same name under ``benchmarks/baselines/``, walks both payloads for
comparable numbers, and reports

* **regressions** — a ``*_seconds`` value more than ``--threshold`` (default
  20%) above the baseline, or a ``speedup`` value more than the threshold
  below it;
* **improvements** — the same movements in the favourable direction;
* everything else as stable.

Exit status is 0 with warnings printed by default (shared runners are noisy;
the gates, not this diff, are the hard floor); ``--strict`` exits 1 on any
regression for local acceptance runs.  Refresh the snapshots by running the
benchmarks with ``BENCH_OUTPUT_DIR=benchmarks/baselines``.

Usage::

    python benchmarks/compare_bench.py [--records DIR] [--baselines DIR]
                                       [--threshold 0.2] [--strict]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator, List, Tuple

#: Keys compared as "lower is better" (wall times).
_TIME_SUFFIX = "_seconds"
#: Keys compared as "higher is better".
_HIGHER_IS_BETTER = ("speedup",)
#: Identifying fields used to label list entries, in label order.  Pairing
#: by identity instead of list position keeps the diff honest when a PR
#: inserts or reorders a benchmark case: the unmatched entry is skipped
#: rather than compared against a different case's numbers.
_IDENTITY_KEYS = ("benchmark", "name", "case", "n", "t", "k", "m", "time", "stars")


def _item_label(item, position: int) -> str:
    """A stable label for a list entry: identifying fields if any, else position."""
    if isinstance(item, dict):
        identity = [f"{key}={item[key]}" for key in _IDENTITY_KEYS if key in item]
        if identity:
            return ",".join(identity)
    return str(position)


def _numeric_leaves(payload, path: str = "") -> Iterator[Tuple[str, float]]:
    """Flatten a record to ``dotted.path -> number`` comparison leaves."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            yield from _numeric_leaves(payload[key], f"{path}.{key}" if path else key)
    elif isinstance(payload, list):
        for position, item in enumerate(payload):
            yield from _numeric_leaves(item, f"{path}[{_item_label(item, position)}]")
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        leaf = path.rsplit(".", 1)[-1]
        if leaf.endswith(_TIME_SUFFIX) or leaf in _HIGHER_IS_BETTER:
            yield path, float(payload)


def compare_records(fresh: dict, baseline: dict, threshold: float) -> List[Tuple[str, str, float, float, float]]:
    """Per-leaf verdicts: ``(status, path, baseline, fresh, relative change)``.

    ``status`` is ``"regression"``, ``"improvement"`` or ``"stable"``; the
    relative change is signed in the *unfavourable* direction (positive =
    worse), so one threshold applies to both time and speedup leaves.
    """
    fresh_leaves = dict(_numeric_leaves(fresh))
    verdicts = []
    for path, base_value in _numeric_leaves(baseline):
        new_value = fresh_leaves.get(path)
        if new_value is None or base_value == 0:
            continue
        change = (new_value - base_value) / base_value
        leaf = path.rsplit(".", 1)[-1]
        if leaf in _HIGHER_IS_BETTER:
            change = -change
        if change > threshold:
            status = "regression"
        elif change < -threshold:
            status = "improvement"
        else:
            status = "stable"
        verdicts.append((status, path, base_value, new_value, change))
    return verdicts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", default=".", help="directory of fresh BENCH_*.json files")
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines"),
        help="directory of committed baseline snapshots",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2, help="relative change treated as movement (default 0.2)"
    )
    parser.add_argument(
        "--strict", action="store_true", help="exit 1 when any regression is found"
    )
    args = parser.parse_args(argv)

    names = sorted(
        name
        for name in os.listdir(args.baselines)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    if not names:
        print(f"no baselines under {args.baselines}")
        return 2
    regressions = 0
    compared = 0
    for name in names:
        fresh_path = os.path.join(args.records, name)
        if not os.path.exists(fresh_path):
            print(f"[skip]       {name}: no fresh record")
            continue
        with open(os.path.join(args.baselines, name), encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(fresh_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
        for status, path, base_value, new_value, change in compare_records(
            fresh, baseline, args.threshold
        ):
            compared += 1
            if status == "stable":
                continue
            if status == "regression":
                regressions += 1
            print(
                f"[{status}] {name}: {path} {base_value:.4g} -> {new_value:.4g} "
                f"({'+' if change >= 0 else ''}{100 * change:.0f}% vs baseline)"
            )
    print(
        f"compared {compared} metrics across {len(names)} baselines: "
        f"{regressions} regression(s) beyond {100 * args.threshold:.0f}%"
    )
    return 1 if args.strict and regressions else 0


if __name__ == "__main__":
    sys.exit(main())
