"""SYSTEM — engineering benchmark: fused vs two-pass knowledge-system construction.

``System.from_family(engine="batch")`` used to compose two disjoint trie
traversals — a ``SweepRunner`` pass for decisions and a layer-retaining
``ViewSource`` pass (no early stopping) for the Definition 4 local-state
index.  The fused scheduler pass (:mod:`repro.engine.fused`) produces both
products from **one** traversal, snapshotting canonical view keys directly
from the layer rows while the decision sweep advances and dropping branches
the moment they stop contributing points.

This benchmark times both constructions on an enumerated n=6 family, asserts

* the fused system is *identical* to the two-pass one (same local-state
  index, same decisions, run for run),
* the fused construction performs exactly **one** trie traversal (the
  ``PrefixScheduler.passes_started`` counter) where the two-pass baseline
  performs two,
* the fused path is at least 1.8x faster on the acceptance configuration
  (Optmin; 2.1-2.6x is typical locally — ``SYSTEM_BUILD_MIN_SPEEDUP`` scales
  the gates on noisy shared runners, the identity assertions always hold).
  The uniform protocol rides along at a secondary ≥1.3x floor: u-Pmin decides
  a round before the horizon on most branches, so nearly every point of every
  run stays live and the Definition 4 keying — work both constructions share —
  dominates; the measured 1.6-1.9x is recorded as data rather than gated,

and records the measured trajectory as ``BENCH_system_build.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.adversaries.enumeration import enumerate_adversaries
from repro.core import OptMin, UPMin
from repro.engine import PrefixScheduler
from repro.knowledge import System
from repro.model import Context

from conftest import print_table, record_benchmark


CONTEXT = Context(n=6, t=4, k=2)
#: Exhaustive within the canonical-delivery, crash-round <= 2 restriction,
#: truncated so the (deliberately slower) two-pass baseline stays benchmarkable.
FAMILY_LIMIT = 20_000
#: The fusion acceptance gate, asserted on the Optmin configuration; the
#: late-deciding u-Pmin shares most of its (keying-dominated) work between
#: the two constructions and is floored at GATES["u-Pmin[k]"] instead.
MIN_SPEEDUP = float(os.environ.get("SYSTEM_BUILD_MIN_SPEEDUP", "1.8"))
GATES = {"Optmin[k]": MIN_SPEEDUP, "u-Pmin[k]": MIN_SPEEDUP * 13 / 18}


def _family():
    return list(
        enumerate_adversaries(
            CONTEXT, max_crash_round=2, receiver_policy="canonical", limit=FAMILY_LIMIT
        )
    )


def run_comparison():
    """(protocol, runs, index keys, two-pass s, fused s, fused passes) rows."""
    adversaries = _family()
    rows = []
    for protocol in (OptMin(CONTEXT.k), UPMin(CONTEXT.k)):
        start = time.perf_counter()
        two_pass = System._from_family_two_pass(protocol, adversaries, CONTEXT.t)
        two_pass_seconds = time.perf_counter() - start

        passes_before = PrefixScheduler.passes_started
        start = time.perf_counter()
        fused = System.from_family(protocol, adversaries, CONTEXT.t, engine="batch")
        fused_seconds = time.perf_counter() - start
        fused_passes = PrefixScheduler.passes_started - passes_before

        # The identity contract, embedded in the benchmark: one traversal
        # must produce byte-identical decisions and the identical
        # Definition 4 local-state index.
        assert fused._index == two_pass._index
        assert len(fused.runs) == len(two_pass.runs)
        assert all(
            f.decisions() == t.decisions() and f.stop_time == t.stop_time
            for f, t in zip(fused.runs, two_pass.runs)
        )
        rows.append(
            (
                protocol.name,
                len(fused.runs),
                len(fused._index),
                two_pass_seconds,
                fused_seconds,
                fused_passes,
            )
        )
    return rows


@pytest.mark.benchmark(group="system-build")
def test_fused_system_construction_speedup(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        f"SYSTEM — fused vs two-pass System.from_family on n={CONTEXT.n}, "
        f"t={CONTEXT.t} families ({FAMILY_LIMIT} adversaries)",
        ["protocol", "runs", "index keys", "two-pass s", "fused s", "speedup", "trie passes"],
        [
            (name, runs, keys, f"{two:.3f}", f"{fused:.3f}", f"{two / fused:.2f}x", passes)
            for name, runs, keys, two, fused, passes in rows
        ],
    )
    record_benchmark(
        "system_build",
        {
            "context": {"n": CONTEXT.n, "t": CONTEXT.t, "k": CONTEXT.k},
            "family_limit": FAMILY_LIMIT,
            "min_speedup_gate": MIN_SPEEDUP,
            "results": [
                {
                    "protocol": name,
                    "runs": runs,
                    "index_keys": keys,
                    "two_pass_seconds": two,
                    "fused_seconds": fused,
                    "speedup": two / fused,
                    "trie_passes": passes,
                }
                for name, runs, keys, two, fused, passes in rows
            ],
        },
    )
    for name, _runs, _keys, two_pass_seconds, fused_seconds, fused_passes in rows:
        # The acceptance criteria of the fusion: a single traversal, and the
        # per-protocol speedup gate (>= 1.8x on the Optmin configuration).
        assert fused_passes == 1, (
            f"{name}: fused construction started {fused_passes} trie passes (expected 1)"
        )
        gate = GATES[name]
        assert two_pass_seconds >= gate * fused_seconds, (
            f"{name}: fused construction fell below {gate:.2f}x "
            f"(two-pass {two_pass_seconds:.3f}s vs fused {fused_seconds:.3f}s)"
        )
