"""COMPLEX — engineering benchmark: trie-shared vs per-adversary star complexes.

Before the view-materialisation port, every star-complex lookup re-simulated
a reference ``Run`` (the seed ``ProtocolComplex.star_of``), so the exhaustive
Proposition 2 survey — build the ``m``-round protocol complex of the n=4,
t=2 restricted family ("at most k=2 crashes per round"), then construct the
star complex of *every* vertex — paid one fresh simulation per adversary
during the build and another per vertex afterwards.  This benchmark times
both phases on both paths:

* **reference** — the seed pipeline: ``engine="reference"`` build (one
  ``Run`` per adversary), then per-vertex star construction via a fresh
  ``Run`` + ``view_key`` per lookup (exactly the seed ``star_of``);
* **batch** — the PR pipeline: the shipped ``engine="batch"`` builder (one
  :class:`repro.engine.ViewSource` pass materialising canonical keys and
  facets once per (prefix-class, input-class)), after which star
  construction is pure facet extraction and the capacities fall out of the
  canonical keys — no re-simulation at all.

The surveys must produce identical complexes and identical
(capacity, star size) censuses — asserted unconditionally — and batch star
construction must be at least 3x faster on the exhaustive families (the
acceptance criterion of the port).  The end-to-end pipeline (build + stars)
is additionally floored at parity: sharing must never lose.  Wall-clock
ratios are noisy on shared runners, so CI lowers the gate via
``COMPLEX_BUILD_MIN_SPEEDUP`` while local/acceptance runs keep the 3x target.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.model import Adversary, Context, Run
from repro.model.view import view_key
from repro.topology import build_protocol_complex
from repro.topology.protocol_complex import per_round_crash_patterns

from conftest import print_table, record_benchmark


CONTEXT = Context(n=4, t=2, k=2)
CASES = (1, 2)
MIN_SPEEDUP = float(os.environ.get("COMPLEX_BUILD_MIN_SPEEDUP", "3.0"))


def _family(rounds):
    return [
        Adversary([CONTEXT.k] * CONTEXT.n, pattern)
        for pattern in per_round_crash_patterns(CONTEXT.n, rounds, CONTEXT.k)
        if pattern.num_failures <= CONTEXT.t
    ]


def reference_pipeline(adversaries, m):
    """The seed path: per-adversary build, then one fresh Run per star lookup."""
    start = time.perf_counter()
    pc = build_protocol_complex(adversaries, m, CONTEXT.t, engine="reference")
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    census = []
    for adversary, process in pc.vertex_views.values():
        run = Run(None, adversary, CONTEXT.t, horizon=m)  # the seed star_of path
        view = run.view(process, m)
        star = pc.complex.star((process, view_key(view)))
        census.append((view.hidden_capacity(), len(star.facets)))
    star_seconds = time.perf_counter() - start
    return pc.complex, sorted(census), build_seconds, star_seconds


def _capacity_from_key(key):
    """``HC<i, m>`` recovered from a canonical view key alone (no engine).

    The key carries the ``latest_seen`` / ``earliest_evidence`` rows, and
    ``<j, l>`` is hidden iff ``latest_seen[j] < l < earliest_evidence[j]``.
    """
    _process, observed_time, latest_seen, evidence, _values, _senders = key
    return min(
        sum(1 for seen, ev in zip(latest_seen, evidence) if seen < layer < ev)
        for layer in range(observed_time + 1)
    )


def batch_pipeline(adversaries, m):
    """The shared path: the shipped batch builder, then simulation-free stars."""
    start = time.perf_counter()
    pc = build_protocol_complex(adversaries, m, CONTEXT.t, engine="batch")
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    census = []
    for vertex in pc.vertex_views:
        _process, key = vertex
        census.append((_capacity_from_key(key), len(pc.complex.star(vertex).facets)))
    star_seconds = time.perf_counter() - start
    return pc.complex, sorted(census), build_seconds, star_seconds


def run_comparison():
    """(m, adversaries, vertices, ref build, ref stars, batch build, batch stars) rows."""
    rows = []
    for m in CASES:
        adversaries = _family(m)
        batch_complex, batch_census, batch_build, batch_stars = batch_pipeline(adversaries, m)
        ref_complex, ref_census, ref_build, ref_stars = reference_pipeline(adversaries, m)
        # The differential contract, embedded in the benchmark: identical
        # complexes and identical (capacity, star size) censuses.
        assert batch_complex == ref_complex
        assert batch_census == ref_census
        rows.append(
            (m, len(adversaries), len(batch_complex.vertices), ref_build, ref_stars, batch_build, batch_stars)
        )
    return rows


@pytest.mark.benchmark(group="complex-build")
def test_batch_star_construction_speedup(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        f"COMPLEX — exhaustive star-complex survey, n={CONTEXT.n}, t={CONTEXT.t}, "
        f"at most {CONTEXT.k} crashes/round",
        ["m", "adversaries", "vertices", "ref build s", "ref stars s", "batch build s", "batch stars s", "stars speedup", "pipeline speedup"],
        [
            (
                m,
                count,
                vertices,
                f"{rb:.3f}",
                f"{rs:.3f}",
                f"{bb:.3f}",
                f"{bs:.3f}",
                f"{rs / bs:.1f}x",
                f"{(rb + rs) / (bb + bs):.1f}x",
            )
            for m, count, vertices, rb, rs, bb, bs in rows
        ],
    )
    record_benchmark(
        "complex_build",
        {
            "context": {"n": CONTEXT.n, "t": CONTEXT.t, "k": CONTEXT.k},
            "min_speedup_gate": MIN_SPEEDUP,
            "results": [
                {
                    "m": m,
                    "adversaries": count,
                    "vertices": vertices,
                    "reference_build_seconds": rb,
                    "reference_stars_seconds": rs,
                    "batch_build_seconds": bb,
                    "batch_stars_seconds": bs,
                    "stars_speedup": rs / bs,
                    "pipeline_speedup": (rb + rs) / (bb + bs),
                }
                for m, count, vertices, rb, rs, bb, bs in rows
            ],
        },
    )
    for m, _count, _vertices, ref_build, ref_stars, batch_build, batch_stars in rows:
        # The acceptance gate: star construction without re-simulation.
        assert ref_stars >= MIN_SPEEDUP * batch_stars, (
            f"m={m}: batch star construction fell below {MIN_SPEEDUP}x "
            f"(reference {ref_stars:.3f}s vs batch {batch_stars:.3f}s)"
        )
        # Whole-pipeline floor: materialising the family on the trie must not
        # lose to the per-adversary rebuild it replaced.  The 0.7 factor
        # absorbs scheduler jitter on the few-millisecond m=1 totals; a real
        # regression (batch slower than reference) still trips it.
        assert ref_build + ref_stars >= 0.7 * (batch_build + batch_stars)
