"""PROP2 — Proposition 2: hidden capacity >= k implies a (k-1)-connected star complex.

The benchmark builds exhaustive one- and two-round protocol complexes for
small systems (the "at most k crashes per round" family of the lower-bound
literature), sweeps every vertex, and cross-tabulates the vertex's hidden
capacity against the homological connectivity of its star complex.
Proposition 2 predicts that no vertex with capacity >= k has a star that
fails the (k-1)-connectivity proxy; the converse direction (which the paper
leaves open) is reported as data.

The complexes are built by the fused view-only scheduler pass (the batch
default — one traversal per family, sharded across workers when
``PROP2_PROCESSES`` is set on a multi-core runner), every vertex's hidden
capacity is recovered from its canonical key
(:func:`repro.topology.vertex_capacity`), and the survey itself runs on the
**symmetry quotient** (:func:`repro.topology.capacity_connectivity_census`
with ``symmetry="quotient"``): vertices are grouped by their canonical
view-key class and homology runs once per star-isomorphism class through the
signature-keyed :class:`repro.topology.ConnectivityCache` — ~35 homology
computations instead of 5316 on the n=6, k=2, m=2 case.  The
quotient-vs-exhaustive identity is gated by
``benchmarks/bench_symmetry_quotient.py`` and pinned by
``tests/test_quotient_differential.py``; wall times per case are recorded to
``BENCH_prop2_connectivity.json``.

Homology runs on the word-packed backend (``backend="packed"`` — the
post-PR6 default); on the flagship n=6, k=2, m=2 case the benchmark
re-runs the census on the retained ``bigint`` oracle and asserts the two
rows byte-identical (the packed-kernel acceptance identity).
"""

from __future__ import annotations

import os
import time as wall

import pytest

from repro.model import Context
from repro.topology import build_restricted_complex, capacity_connectivity_census

from conftest import print_table, record_benchmark


CASES = [
    # (n, k, time)
    (4, 1, 1),
    (5, 2, 1),
    (6, 2, 1),
    # The n >= 6, m >= 2 regime the sparse bitset kernel opened: ~260k
    # adversaries, a 5316-vertex / 32298-facet complex.  The seed paid a
    # quadratic maximality filter on construction and a full face-lattice
    # enumeration per star here; the kernel's star-indexed filter,
    # dimension-bounded homology and the symmetry-quotient survey keep the
    # whole census tractable.
    (6, 2, 2),
]

#: Worker processes for the complex-build pass (0 = serial).  The sharded
#: pass only pays off with real cores; single-core CI boxes keep the default.
PROCESSES = int(os.environ.get("PROP2_PROCESSES", "0")) or None


def run_survey():
    rows = []
    timings = []
    for n, k, time in CASES:
        context = Context(n=n, t=n - 1, k=k)
        start = wall.perf_counter()
        pc = build_restricted_complex(
            context, time=time, max_crashes_per_round=k, processes=PROCESSES
        )
        build_seconds = wall.perf_counter() - start
        start = wall.perf_counter()
        census = capacity_connectivity_census(pc, k, symmetry="quotient", backend="packed")
        survey_seconds = wall.perf_counter() - start
        if (n, k, time) == (6, 2, 2):
            # The packed-kernel acceptance identity: the packed backend must
            # reproduce the bigint oracle's census row byte-for-byte on the
            # flagship n=6, k=2, m=2 survey.
            oracle = capacity_connectivity_census(
                pc, k, symmetry="quotient", backend="bigint"
            )
            assert census.row == oracle.row, (census.row, oracle.row)
            assert census.classes == oracle.classes
        rows.append((n, k, time) + census.row)
        timings.append(
            (n, k, time, census.vertices, census.classes, build_seconds, survey_seconds)
        )
    return rows, timings


@pytest.mark.benchmark(group="prop2")
def test_prop2_capacity_implies_connectivity(benchmark):
    # One round, one iteration: the n=6, m=2 case sweeps a quarter-million
    # adversaries; calibrated re-runs would multiply minutes, not precision.
    rows, timings = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    print_table(
        "PROP2 — hidden capacity vs (k-1)-connectivity of the star complex",
        [
            "n",
            "k",
            "m",
            "vertices",
            "HC >= k",
            "of which (k-1)-connected",
            "(k-1)-connected stars",
            "of which HC >= k",
        ],
        rows,
    )
    record_benchmark(
        "prop2_connectivity",
        {
            "processes": PROCESSES or 1,
            "symmetry": "quotient",
            "backend": "packed",
            "results": [
                {
                    "n": n,
                    "k": k,
                    "m": m,
                    "vertices": vertices,
                    "classes": classes,
                    "build_seconds": build,
                    "survey_seconds": survey,
                }
                for n, k, m, vertices, classes, build, survey in timings
            ],
        },
    )
    for _n, _k, _m, total, high, consistent, _conn, _conv in rows:
        assert total > 0
        # Proposition 2: every high-capacity vertex has a (k-1)-connected star.
        assert consistent == high
