"""PROP2 — Proposition 2: hidden capacity >= k implies a (k-1)-connected star complex.

The benchmark builds exhaustive one- and two-round protocol complexes for
small systems (the "at most k crashes per round" family of the lower-bound
literature), sweeps every vertex, and cross-tabulates the vertex's hidden
capacity against the homological connectivity of its star complex.
Proposition 2 predicts that no vertex with capacity >= k has a star that
fails the (k-1)-connectivity proxy; the converse direction (which the paper
leaves open) is reported as data.

The complexes are built by the fused view-only scheduler pass (the batch
default — one traversal per family, sharded across workers when
``PROP2_PROCESSES`` is set on a multi-core runner), and every vertex's hidden
capacity is recovered from its canonical key
(:func:`repro.topology.vertex_capacity`) — the survey no longer simulates a
single reference ``Run``, where it once paid one per vertex and later one per
adversary through the memoised cache.  Wall times per case are recorded to
``BENCH_prop2_connectivity.json``.
"""

from __future__ import annotations

import os
import time as wall

import pytest

from repro.model import Context
from repro.topology import build_restricted_complex, connectivity_profile, vertex_capacity

from conftest import print_table, record_benchmark


CASES = [
    # (n, k, time)
    (4, 1, 1),
    (5, 2, 1),
    (6, 2, 1),
    # The n >= 6, m >= 2 regime the sparse bitset kernel opened: ~260k
    # adversaries, a 5316-vertex / 32298-facet complex.  The seed paid a
    # quadratic maximality filter on construction and a full face-lattice
    # enumeration per star here; the kernel's star-indexed filter and
    # dimension-bounded homology keep the whole survey tractable.
    (6, 2, 2),
]

#: Worker processes for the complex-build pass (0 = serial).  The sharded
#: pass only pays off with real cores; single-core CI boxes keep the default.
PROCESSES = int(os.environ.get("PROP2_PROCESSES", "0")) or None


def run_survey():
    rows = []
    timings = []
    for n, k, time in CASES:
        context = Context(n=n, t=n - 1, k=k)
        start = wall.perf_counter()
        pc = build_restricted_complex(
            context, time=time, max_crashes_per_round=k, processes=PROCESSES
        )
        build_seconds = wall.perf_counter() - start
        start = wall.perf_counter()
        total = 0
        high_capacity = 0
        consistent = 0
        converse_holds = 0
        converse_cases = 0
        for vertex, (adversary, process) in pc.vertex_views.items():
            capacity = vertex_capacity(vertex)
            star = pc.complex.star(vertex)
            level = connectivity_profile(star, max_q=k - 1)
            total += 1
            if capacity >= k:
                high_capacity += 1
                if level >= k - 1:
                    consistent += 1
            if level >= k - 1:
                converse_cases += 1
                if capacity >= k:
                    converse_holds += 1
        survey_seconds = wall.perf_counter() - start
        rows.append((n, k, time, total, high_capacity, consistent, converse_cases, converse_holds))
        timings.append((n, k, time, total, build_seconds, survey_seconds))
    return rows, timings


@pytest.mark.benchmark(group="prop2")
def test_prop2_capacity_implies_connectivity(benchmark):
    # One round, one iteration: the n=6, m=2 case sweeps a quarter-million
    # adversaries; calibrated re-runs would multiply minutes, not precision.
    rows, timings = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    print_table(
        "PROP2 — hidden capacity vs (k-1)-connectivity of the star complex",
        [
            "n",
            "k",
            "m",
            "vertices",
            "HC >= k",
            "of which (k-1)-connected",
            "(k-1)-connected stars",
            "of which HC >= k",
        ],
        rows,
    )
    record_benchmark(
        "prop2_connectivity",
        {
            "processes": PROCESSES or 1,
            "results": [
                {
                    "n": n,
                    "k": k,
                    "m": m,
                    "vertices": vertices,
                    "build_seconds": build,
                    "survey_seconds": survey,
                }
                for n, k, m, vertices, build, survey in timings
            ],
        },
    )
    for _n, _k, _m, total, high, consistent, _conn, _conv in rows:
        assert total > 0
        # Proposition 2: every high-capacity vertex has a (k-1)-connected star.
        assert consistent == high
