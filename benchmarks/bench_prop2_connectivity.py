"""PROP2 — Proposition 2: hidden capacity >= k implies a (k-1)-connected star complex.

The benchmark builds exhaustive one-round protocol complexes for small systems
(the "at most k crashes per round" family of the lower-bound literature),
sweeps every vertex, and cross-tabulates the vertex's hidden capacity against
the homological connectivity of its star complex.  Proposition 2 predicts that
no vertex with capacity >= k has a star that fails the (k-1)-connectivity
proxy; the converse direction (which the paper leaves open) is reported as
data.

The complexes are built on the batch engine (the default — the family is
materialised once on the prefix-sharing trie) and every per-vertex lookup
goes through the complex's memoised ``RunCache`` instead of re-simulating a
reference ``Run`` per vertex, which is what this survey did before the
view-materialisation port.
"""

from __future__ import annotations

import pytest

from repro.model import Context
from repro.topology import build_restricted_complex, connectivity_profile

from conftest import print_table


CASES = [
    # (n, k, time)
    (4, 1, 1),
    (5, 2, 1),
    (6, 2, 1),
    # The n >= 6, m >= 2 regime the sparse bitset kernel opened: ~260k
    # adversaries, a 5316-vertex / 32298-facet complex.  The seed paid a
    # quadratic maximality filter on construction and a full face-lattice
    # enumeration per star here; the kernel's star-indexed filter and
    # dimension-bounded homology keep the whole survey tractable.
    (6, 2, 2),
]


def run_survey():
    rows = []
    for n, k, time in CASES:
        context = Context(n=n, t=n - 1, k=k)
        pc = build_restricted_complex(context, time=time, max_crashes_per_round=k)
        total = 0
        high_capacity = 0
        consistent = 0
        converse_holds = 0
        converse_cases = 0
        for adversary, process in pc.vertex_views.values():
            run = pc.run_cache.get(adversary, context.t, horizon=time)
            if not run.has_view(process, time):
                continue
            capacity = run.view(process, time).hidden_capacity()
            star = pc.star_of(adversary, process, context.t)
            level = connectivity_profile(star, max_q=k - 1)
            total += 1
            if capacity >= k:
                high_capacity += 1
                if level >= k - 1:
                    consistent += 1
            if level >= k - 1:
                converse_cases += 1
                if capacity >= k:
                    converse_holds += 1
        rows.append((n, k, time, total, high_capacity, consistent, converse_cases, converse_holds))
    return rows


@pytest.mark.benchmark(group="prop2")
def test_prop2_capacity_implies_connectivity(benchmark):
    # One round, one iteration: the n=6, m=2 case sweeps a quarter-million
    # adversaries; calibrated re-runs would multiply minutes, not precision.
    rows = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    print_table(
        "PROP2 — hidden capacity vs (k-1)-connectivity of the star complex",
        [
            "n",
            "k",
            "m",
            "vertices",
            "HC >= k",
            "of which (k-1)-connected",
            "(k-1)-connected stars",
            "of which HC >= k",
        ],
        rows,
    )
    for _n, _k, _m, total, high, consistent, _conn, _conv in rows:
        assert total > 0
        # Proposition 2: every high-capacity vertex has a (k-1)-connected star.
        assert consistent == high
