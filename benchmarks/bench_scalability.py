"""SCALE — engineering benchmark: cost of simulating runs as n and t grow.

Not a paper experiment; it records the cost profile of both execution engines
(the substrate every other experiment stands on) so performance regressions
are visible in the benchmark history: the reference per-adversary ``Run`` and
the batch sweep engine of :mod:`repro.engine` on the same ensembles.
"""

from __future__ import annotations

import pytest

from repro import OptMin, SweepRunner, UPMin
from repro.adversaries import AdversaryGenerator
from repro.model import Context, Run


CASES = [(8, 4), (16, 8), (32, 10), (64, 12)]


def simulate(context: Context, adversaries, protocol) -> int:
    decided = 0
    for adversary in adversaries:
        run = Run(protocol, adversary, context.t)
        decided += sum(1 for _ in run.decisions())
    return decided


def simulate_batch(context: Context, adversaries, protocol) -> int:
    runner = SweepRunner(protocol, context.t)
    return sum(len(run.decisions()) for run in runner.sweep(adversaries))


@pytest.mark.benchmark(group="scale")
@pytest.mark.parametrize("n,t", CASES)
def test_optmin_simulation_cost(benchmark, n, t):
    context = Context(n=n, t=t, k=2)
    adversaries = AdversaryGenerator(context, seed=n).sample(5)
    decided = benchmark(simulate, context, adversaries, OptMin(2))
    assert decided > 0


@pytest.mark.benchmark(group="scale")
@pytest.mark.parametrize("n,t", CASES[:3])
def test_upmin_simulation_cost(benchmark, n, t):
    context = Context(n=n, t=t, k=2)
    adversaries = AdversaryGenerator(context, seed=n).sample(5)
    decided = benchmark(simulate, context, adversaries, UPMin(2))
    assert decided > 0


@pytest.mark.benchmark(group="scale")
@pytest.mark.parametrize("n,t", CASES)
def test_optmin_batch_sweep_cost(benchmark, n, t):
    """The same ensembles through the batch engine — must match the reference."""
    context = Context(n=n, t=t, k=2)
    adversaries = AdversaryGenerator(context, seed=n).sample(5)
    decided = benchmark(simulate_batch, context, adversaries, OptMin(2))
    assert decided == simulate(context, adversaries, OptMin(2))


@pytest.mark.benchmark(group="scale")
@pytest.mark.parametrize("n,t", CASES[:3])
def test_upmin_batch_sweep_cost(benchmark, n, t):
    context = Context(n=n, t=t, k=2)
    adversaries = AdversaryGenerator(context, seed=n).sample(5)
    decided = benchmark(simulate_batch, context, adversaries, UPMin(2))
    assert decided == simulate(context, adversaries, UPMin(2))
