"""SPERNER — Appendix B.1: the Div σ subdivision and Sperner's lemma machinery.

The benchmark builds the paper's subdivision ``Div σ`` for increasing ``k``,
colors it with decision-style Sperner colorings, and verifies the parity
statement of Sperner's lemma (Lemma 4) that the topological unbeatability
proof consumes — reporting the size of the subdivision and the number of
fully-colored simplexes (i.e. executions deciding k+1 distinct values that the
proof derives a contradiction from).
"""

from __future__ import annotations

import pytest

from repro.topology import (
    census,
    count_top_simplices,
    paper_subdivision,
    random_sperner_coloring,
    sperner_lemma_holds,
)

from conftest import print_table


K_SWEEP = [1, 2, 3, 4, 5]


def run_sweep():
    rows = []
    for k in K_SWEEP:
        subdivision = paper_subdivision(k)
        coloring = random_sperner_coloring(subdivision, seed=k)
        summary = census(subdivision, coloring)
        parity = sperner_lemma_holds(subdivision, coloring)
        rows.append(
            (
                k,
                summary["vertices"],
                summary["top_simplices"],
                summary["fully_colored"],
                parity,
            )
        )
    return rows


@pytest.mark.benchmark(group="sperner")
def test_sperner_machinery(benchmark):
    rows = benchmark(run_sweep)
    print_table(
        "SPERNER — Div σ sizes and Sperner's lemma parity",
        ["k", "vertices", "top simplices", "fully colored", "odd parity"],
        rows,
    )
    for k, vertices, top, fully, parity in rows:
        assert parity
        assert fully >= 1 and fully % 2 == 1
        if k == 2:
            # Fig. 5 (center): 5 vertices and 4 triangles.
            assert vertices == 5 and top == 4
